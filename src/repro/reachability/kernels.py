"""Pluggable bitset-kernel backends: pure-python vs. vectorized numpy.

The hot kernels of the packed pipeline — the multi-source BFS frontier sweep
(:func:`repro.reachability.bitset_msbfs.propagate`), the packed-row harvest
(:func:`~repro.reachability.bitset_msbfs.set_reachability_rows`) and the
rank packing behind the per-SCC member masks
(:func:`repro.reachability.packed.pack_ranks`) — have two implementations:

``python``
    The original arbitrary-width-int loops.  No dependencies, always
    available, and the reference semantics every other backend must match
    byte for byte.

``numpy``
    A level-synchronous sweep over a dense ``(num_vertices, words)`` uint64
    matrix: each BFS level gathers the whole frontier's adjacency with one
    fancy-index, scatter-ORs the frontier bits into the successors with one
    unbuffered ``np.bitwise_or.at``, and keeps only the vertices that gained
    new bits.  The harvest unpacks the seen matrix column-wise
    (``np.unpackbits``/``np.packbits``) so a source's packed row is built
    without per-bit Python work.

Both backends compute the same unique fixpoint — the set of (source, vertex)
reachability facts is fully determined by the graph and the seeds — so their
outputs are **byte-identical** by construction, and every consumer from
:mod:`repro.core.packed_steps` to the wire format is untouched by the switch.
The differential harness in ``tests/proptest/`` pins this down.

Selection is **process-global** (`DSRConfig(kernels=...)` applies it at
engine construction; the ``REPRO_KERNELS`` environment variable seeds the
default).  A global is semantically safe precisely because the outputs are
identical — two engines with different preferences only contend on speed —
and it is what lets forked shard workers inherit the choice without any
payload plumbing.  ``auto`` resolves to ``numpy`` when importable (and the
host is little-endian), else ``python``.
"""

from __future__ import annotations

import os
import sys
import threading
from contextlib import contextmanager
from typing import Dict, Iterable, List, Optional, Sequence, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.csr import CSRGraph

#: Names accepted by ``DSRConfig.kernels`` / :func:`set_kernel_backend`.
KERNEL_NAMES = ("auto", "python", "numpy")

_np = None
_np_checked = False
_lock = threading.Lock()


def numpy_available() -> bool:
    """True when the numpy backend can run here (import + little-endian)."""
    return _numpy() is not None


def _numpy():
    """Import numpy once; ``None`` when missing or on a big-endian host.

    The numpy kernels view uint64 word matrices as little-endian byte
    buffers (`.view(uint8)` + ``int.from_bytes(..., "little")``), which is
    only an identity on little-endian hosts — everywhere this project runs,
    but gated anyway so a big-endian port degrades to the python backend
    instead of corrupting rows.
    """
    global _np, _np_checked
    if _np_checked:
        return _np
    with _lock:
        if _np_checked:
            return _np
        module = None
        if sys.byteorder == "little":
            try:
                import numpy as module  # noqa: F811
            except ImportError:  # pragma: no cover - numpy-less environments
                module = None
        _np = module
        _np_checked = True
    return _np


def resolve_kernels(name: str) -> str:
    """Resolve a configured kernels name to a concrete backend.

    ``auto`` picks ``numpy`` when available; asking for ``numpy`` explicitly
    when it cannot run raises so the failure is loud at configuration time,
    not silent at query time.
    """
    if name not in KERNEL_NAMES:
        raise ValueError(
            f"unknown kernels backend {name!r}; available: {', '.join(KERNEL_NAMES)}"
        )
    if name == "auto":
        return "numpy" if numpy_available() else "python"
    if name == "numpy" and not numpy_available():
        raise ValueError(
            "kernels='numpy' requested but numpy is not importable "
            "(install with `pip install repro-dsr[numpy]` or use kernels='auto')"
        )
    return name


_backend = resolve_kernels(os.environ.get("REPRO_KERNELS", "auto"))


def kernel_backend() -> str:
    """The currently selected backend (``"python"`` or ``"numpy"``)."""
    return _backend


def set_kernel_backend(name: str) -> str:
    """Select the process-global kernel backend; returns the resolved name."""
    global _backend
    _backend = resolve_kernels(name)
    return _backend


@contextmanager
def use_kernels(name: str):
    """Temporarily switch the kernel backend (test/bench helper)."""
    global _backend
    previous = _backend
    _backend = resolve_kernels(name)
    try:
        yield _backend
    finally:
        _backend = previous


# ---------------------------------------------------------------------- #
# numpy implementations
# ---------------------------------------------------------------------- #
def _as_int64(np, buffer):
    """Zero-copy int64 view of an ``array('q')`` or shared memoryview."""
    if len(buffer) == 0:
        return np.empty(0, dtype=np.int64)
    return np.frombuffer(buffer, dtype=np.int64)


def _seed_matrix(np, csr: "CSRGraph", seed_bits: Dict[int, int]):
    """``(indices, bits_matrix, words)`` for the seeds of one sweep."""
    width = max((bits.bit_length() for bits in seed_bits.values()), default=0)
    words = max(1, (width + 63) >> 6)
    indices = np.fromiter(seed_bits, dtype=np.int64, count=len(seed_bits))
    rows = np.zeros((len(seed_bits), words), dtype=np.uint64)
    row_view = rows.view(np.uint8)
    for position, bits in enumerate(seed_bits.values()):
        if bits:
            chunk = bits.to_bytes(words * 8, "little")
            row_view[position, : len(chunk)] = np.frombuffer(chunk, dtype=np.uint8)
    return indices, rows, words


def np_propagate_matrix(csr: "CSRGraph", seed_bits: Dict[int, int], reverse: bool = False):
    """Run the frontier sweep to fixpoint; returns the ``(n, words)`` matrix.

    One BFS level = one adjacency gather over the whole frontier + one
    scatter-OR into the successors; a vertex re-enters the frontier only
    with the bits it *gained* this level, mirroring the python kernel's
    termination exactly (the fixpoint itself is unique either way).
    """
    np = _numpy()
    n = csr.num_vertices
    if reverse:
        offsets = _as_int64(np, csr.rev_offsets)
        targets = _as_int64(np, csr.rev_targets)
    else:
        offsets = _as_int64(np, csr.fwd_offsets)
        targets = _as_int64(np, csr.fwd_targets)

    if not seed_bits:
        return np.zeros((n, 1), dtype=np.uint64)
    frontier_idx, frontier_bits, words = _seed_matrix(np, csr, seed_bits)
    seen = np.zeros((n, words), dtype=np.uint64)
    # Seeds may repeat a vertex; scatter-OR folds duplicates correctly.
    np.bitwise_or.at(seen, frontier_idx, frontier_bits)
    frontier_idx, frontier_bits = _nonzero_rows(np, frontier_idx, seen[frontier_idx])

    while frontier_idx.size:
        starts = offsets[frontier_idx]
        degrees = (offsets[frontier_idx + 1] - starts).astype(np.int64)
        total = int(degrees.sum())
        if not total:
            break
        # Concatenate the frontier's adjacency runs without a Python loop:
        # positions k in [0, total) map to targets[starts[i] + local_k].
        run_ids = np.repeat(np.arange(frontier_idx.size, dtype=np.int64), degrees)
        run_starts = np.repeat(starts, degrees)
        run_first = np.repeat(np.cumsum(degrees) - degrees, degrees)
        successors = targets[run_starts + (np.arange(total, dtype=np.int64) - run_first)]
        carried = frontier_bits[run_ids]

        unique_succ, inverse = np.unique(successors, return_inverse=True)
        gathered = np.zeros((unique_succ.size, words), dtype=np.uint64)
        np.bitwise_or.at(gathered, inverse, carried)
        new_bits = gathered & ~seen[unique_succ]
        gained = new_bits.any(axis=1)
        if not gained.any():
            break
        frontier_idx = unique_succ[gained]
        frontier_bits = new_bits[gained]
        seen[frontier_idx] |= frontier_bits
    return seen


def _nonzero_rows(np, indices, rows):
    keep = rows.any(axis=1)
    return indices[keep], rows[keep]


def np_propagate(csr: "CSRGraph", seed_bits: Dict[int, int], reverse: bool = False) -> List[int]:
    """Numpy sibling of :func:`repro.reachability.bitset_msbfs.propagate`."""
    seen = np_propagate_matrix(csr, seed_bits, reverse=reverse)
    row_bytes = seen.view("uint8" if seen.size else "uint8")
    return [
        int.from_bytes(row_bytes[i].tobytes(), "little") for i in range(seen.shape[0])
    ]


def np_set_reachability_rows(
    csr: "CSRGraph",
    sources: Iterable[int],
    target_mask: Optional[int] = None,
    batch_size: int = 512,
) -> Dict[int, int]:
    """Numpy sibling of ``bitset_msbfs.set_reachability_rows`` (byte-identical).

    The harvest transposes the seen matrix with ``np.unpackbits`` /
    ``np.packbits`` (bit order ``little``, matching the row encoding), so a
    source's full packed row materialises with two vectorised passes instead
    of a per-(target, source-bit) Python loop.
    """
    np = _numpy()
    if batch_size < 1:
        raise ValueError("batch_size must be positive")
    source_list = list(sources)
    rows: Dict[int, int] = {source: 0 for source in source_list}
    valid_sources = [source for source in source_list if csr.has_vertex(source)]
    n = csr.num_vertices
    if not valid_sources or target_mask == 0 or not n:
        return rows

    if target_mask is None:
        keep = None
    else:
        mask_bytes = target_mask.to_bytes((n + 7) >> 3, "little")
        keep = np.unpackbits(
            np.frombuffer(mask_bytes, dtype=np.uint8), count=n, bitorder="little"
        ).astype(bool)

    for start in range(0, len(valid_sources), batch_size):
        batch = valid_sources[start : start + batch_size]
        seeds: Dict[int, int] = {}
        for position, source in enumerate(batch):
            index = csr.index_of(source)
            seeds[index] = seeds.get(index, 0) | (1 << position)
        seen = np_propagate_matrix(csr, seeds)
        if keep is not None:
            seen = seen * keep[:, None]
        # Transpose bits: column p of the unpacked matrix is source p's row.
        columns = np.unpackbits(
            seen.view(np.uint8), axis=1, count=len(batch), bitorder="little"
        )
        hit_any = columns.any(axis=0)
        for position, source in enumerate(batch):
            if not hit_any[position]:
                continue
            packed = np.packbits(columns[:, position], bitorder="little")
            rows[source] |= int.from_bytes(packed.tobytes(), "little")
    return rows


def np_pack_ranks(ranks: Sequence[int]) -> int:
    """Numpy sibling of :func:`repro.reachability.packed.pack_ranks`."""
    np = _numpy()
    if not len(ranks):
        return 0
    rank_arr = np.asarray(ranks, dtype=np.int64)
    buffer = np.zeros((int(rank_arr[-1]) >> 3) + 1, dtype=np.uint8)
    np.bitwise_or.at(
        buffer, rank_arr >> 3, np.left_shift(np.uint8(1), (rank_arr & 7).astype(np.uint8))
    )
    return int.from_bytes(buffer.tobytes(), "little")


__all__ = [
    "KERNEL_NAMES",
    "kernel_backend",
    "numpy_available",
    "np_pack_ranks",
    "np_propagate",
    "np_propagate_matrix",
    "np_set_reachability_rows",
    "resolve_kernels",
    "set_kernel_backend",
    "use_kernels",
]
