"""Packed bitset rows over a stable vertex-rank numbering.

This module defines the *currency* of the bitset-native query pipeline: a
**packed row** is one arbitrary-width Python ``int`` whose bit ``r`` means
"the vertex at rank ``r`` is in this set".  Ranks come from a
:class:`VertexRank` — a stable bijection between vertex ids and bit
positions, frozen per epoch (it is derived from the deterministic id order
of a :class:`~repro.graph.csr.CSRGraph` snapshot, so two structurally equal
graphs always agree on every rank).

Rows replace Python ``Set[int]`` materialisation on the query hot path:
intersecting a reached row against a precomputed target mask is one big-int
``AND`` instead of a per-element hash probe, and expanding an SCC component
to its members is one ``OR`` against a precomputed member mask instead of a
per-vertex loop.  Rows also serialise to compact little-endian byte strings
(:func:`row_to_bytes` / :func:`row_from_bytes`) so cross-partition messages
and process-worker payloads can carry them directly on the wire.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Sequence, Tuple, TYPE_CHECKING

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.graph.csr import CSRGraph

from repro.reachability import kernels as _kernels

#: Rank count below which the numpy ``pack_ranks`` is not worth its call
#: overhead; tiny SCC member lists stay on the byte-buffer loop.
_NUMPY_PACK_THRESHOLD = 64

#: Bit positions set in each byte value — the decode loop walks bytes, not
#: bigint lowest-set-bit chains, so scanning an n-bit row costs O(n/8 + k)
#: byte-table lookups instead of O(k) arbitrary-width int operations.
_BYTE_BITS: Tuple[Tuple[int, ...], ...] = tuple(
    tuple(i for i in range(8) if value >> i & 1) for value in range(256)
)


def iter_bits(row: int) -> Iterator[int]:
    """Yield the set bit positions of ``row`` in ascending order."""
    if not row:
        return
    offset = 0
    byte_bits = _BYTE_BITS
    for byte in row.to_bytes((row.bit_length() + 7) // 8, "little"):
        if byte:
            for i in byte_bits[byte]:
                yield offset + i
        offset += 8


def popcount(row: int) -> int:
    """Number of set bits in ``row``."""
    return bin(row).count("1")


def handle_positions(handles: Iterable[int]) -> Dict[int, int]:
    """Handle id → canonical wire position (ascending-id order).

    This is the single definition of how packed handle messages number a
    partition's forward handles: the sender's compound graph, the hydrated
    worker shard and the receiving summary all derive positions through
    this function, so the three views of the wire can never disagree.
    """
    return {handle: position for position, handle in enumerate(sorted(handles))}


def pack_ranks(ranks: Sequence[int]) -> int:
    """Pack ascending bit positions into a row via one ``int.from_bytes``.

    Setting bits in a byte buffer and converting once is O(k + width/8);
    the naive ``row |= 1 << r`` loop reallocates the growing bigint per
    member — O(k·width/64) — which bites on large SCCs / dense rows.
    """
    if not ranks:
        return 0
    if len(ranks) >= _NUMPY_PACK_THRESHOLD and _kernels.kernel_backend() == "numpy":
        return _kernels.np_pack_ranks(ranks)
    buffer = bytearray((ranks[-1] >> 3) + 1)
    for r in ranks:
        buffer[r >> 3] |= 1 << (r & 7)
    return int.from_bytes(buffer, "little")


def row_to_bytes(row: int) -> bytes:
    """Serialise a packed row into a minimal little-endian byte string."""
    return row.to_bytes((row.bit_length() + 7) // 8, "little")


def row_from_bytes(data: bytes) -> int:
    """Inverse of :func:`row_to_bytes`."""
    return int.from_bytes(data, "little")


class VertexRank:
    """A stable vertex-id ↔ bit-position bijection.

    ``ids[r]`` is the vertex at rank ``r`` and ``rank_of[v]`` the rank of
    vertex ``v``.  Instances are immutable by contract; one is derived per
    epoch from each compound graph's CSR snapshot (whose id order is
    deterministic), so every slave — in-process or a hydrated worker
    process — numbers the same vertices identically.
    """

    __slots__ = ("ids", "rank_of", "__weakref__")

    def __init__(self, ids: Sequence[int]) -> None:
        self.ids: Tuple[int, ...] = tuple(ids)
        self.rank_of: Dict[int, int] = {vertex: r for r, vertex in enumerate(self.ids)}

    @classmethod
    def from_csr(cls, csr: "CSRGraph") -> "VertexRank":
        """The rank numbering of a CSR snapshot (its dense index order)."""
        rank = cls.__new__(cls)
        rank.ids = csr.ids
        # Share the snapshot's own id->index dict: identical mapping, and the
        # identity lets native kernels skip any rank translation.
        rank.rank_of = csr._index_of
        return rank

    def __len__(self) -> int:
        return len(self.ids)

    def __contains__(self, vertex: int) -> bool:
        return vertex in self.rank_of

    def pack(self, vertices: Iterable[int]) -> int:
        """Pack vertex ids into a row (ids unknown to this rank are skipped)."""
        row = 0
        rank_of = self.rank_of
        for vertex in vertices:
            r = rank_of.get(vertex)
            if r is not None:
                row |= 1 << r
        return row

    def unpack(self, row: int) -> List[int]:
        """The vertex ids of a row, in ascending rank order."""
        ids = self.ids
        return [ids[r] for r in iter_bits(row)]

    def full_mask(self) -> int:
        """The row with every vertex of this rank set."""
        return (1 << len(self.ids)) - 1


__all__ = [
    "VertexRank",
    "handle_positions",
    "iter_bits",
    "pack_ranks",
    "popcount",
    "row_from_bytes",
    "row_to_bytes",
]
