"""FERRARI-style interval reachability index (Seufert et al. [28]).

FERRARI assigns every vertex a bounded set of post-order identifier intervals
over the SCC-condensed DAG.  A vertex ``u`` reaches ``v`` iff ``v``'s
identifier is contained in one of ``u``'s *exact* intervals; if it only falls
into an *approximate* (merged) interval the index cannot decide and falls back
to a pruned online search.  A small set of high-degree "seed" vertices keeps
exact reachable-bitsets to prune the fallback searches further.

This implementation keeps the same query behaviour and tunables (maximum
number of intervals per vertex, number of seeds) as the original system; the
compression of merged intervals is what provides the tunable space/time
trade-off the paper exploits for "DSR-FERRARI".
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.digraph import DiGraph
from repro.graph.scc import condense
from repro.graph.traversal import topological_order
from repro.reachability.base import ReachabilityIndex

# An interval is a closed range [lo, hi] over post-order ids, plus a flag that
# tells whether it is exact (every id inside is reachable) or approximate.
Interval = Tuple[int, int, bool]


def _merge_intervals(intervals: List[Interval], budget: int) -> List[Interval]:
    """Sort, coalesce and — if needed — approximate intervals down to ``budget``."""
    if not intervals:
        return []
    intervals = sorted(intervals)
    merged: List[Interval] = []
    for lo, hi, exact in intervals:
        if merged and lo <= merged[-1][1] + 1:
            plo, phi, pexact = merged[-1]
            # Adjacent or overlapping: coalesce; exactness survives only if both
            # pieces are exact and they truly touch.
            merged[-1] = (plo, max(phi, hi), pexact and exact and lo <= phi + 1)
        else:
            merged.append((lo, hi, exact))
    while len(merged) > budget:
        # Merge the pair of neighbouring intervals with the smallest gap,
        # marking the result approximate.
        best_gap = None
        best_index = None
        for index in range(len(merged) - 1):
            gap = merged[index + 1][0] - merged[index][1]
            if best_gap is None or gap < best_gap:
                best_gap = gap
                best_index = index
        lo1, hi1, _ = merged[best_index]
        lo2, hi2, _ = merged[best_index + 1]
        merged[best_index : best_index + 2] = [(lo1, max(hi1, hi2), False)]
    return merged


class FerrariIndex(ReachabilityIndex):
    """Interval-labelling reachability index with bounded label size."""

    def __init__(
        self,
        graph: DiGraph,
        max_intervals: int = 4,
        num_seeds: int = 32,
    ) -> None:
        super().__init__(graph)
        self.max_intervals = max(1, max_intervals)
        self.num_seeds = max(0, num_seeds)
        self._build()

    @classmethod
    def local_cost_factor(cls, num_roots: int, avg_degree: float) -> float:
        """Interval labels prune most of every per-root traversal.

        Queries still walk the condensed DAG when the bounded labels are
        inconclusive, so the factor is a constant fraction of a DFS rather
        than the near-free closure lookup.
        """
        del num_roots, avg_degree
        return 0.35

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    def _build(self) -> None:
        self._dag, self._vertex_to_component = condense(self.graph)
        order = topological_order(self._dag)
        # Post-order id per component: process in reverse topological order so
        # that every successor is numbered before its predecessors.
        self._post_id: Dict[int, int] = {}
        for position, component in enumerate(reversed(order)):
            self._post_id[component] = position

        self._intervals: Dict[int, List[Interval]] = {}
        for component in reversed(order):
            own = self._post_id[component]
            collected: List[Interval] = [(own, own, True)]
            for succ in self._dag.successors(component):
                collected.extend(self._intervals[succ])
            self._intervals[component] = _merge_intervals(collected, self.max_intervals)

        # Seeds: highest total-degree components keep exact reachable sets.
        self._seed_reach: Dict[int, Set[int]] = {}
        if self.num_seeds and self._dag.num_vertices:
            by_degree = sorted(
                self._dag.vertices(),
                key=lambda c: self._dag.out_degree(c) + self._dag.in_degree(c),
                reverse=True,
            )
            for component in by_degree[: self.num_seeds]:
                self._seed_reach[component] = self._exact_reachable(component)

    def _exact_reachable(self, component: int) -> Set[int]:
        visited = {component}
        stack = [component]
        while stack:
            current = stack.pop()
            for succ in self._dag.successors(current):
                if succ not in visited:
                    visited.add(succ)
                    stack.append(succ)
        return visited

    def rebuild(self) -> None:
        self._build()

    def index_size(self) -> int:
        intervals = sum(len(entries) for entries in self._intervals.values())
        seeds = sum(len(entries) for entries in self._seed_reach.values())
        return intervals + seeds

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def _label_check(self, source_comp: int, target_comp: int) -> Optional[bool]:
        """Tri-state interval test: True / False / None (= undecided)."""
        target_id = self._post_id[target_comp]
        undecided = False
        for lo, hi, exact in self._intervals[source_comp]:
            if lo <= target_id <= hi:
                if exact:
                    return True
                undecided = True
        if undecided:
            return None
        return False

    def reachable(self, source: int, target: int) -> bool:
        if not self.graph.has_vertex(source) or not self.graph.has_vertex(target):
            return False
        source_comp = self._vertex_to_component[source]
        target_comp = self._vertex_to_component[target]
        if source_comp == target_comp:
            return True
        verdict = self._label_check(source_comp, target_comp)
        if verdict is not None:
            return verdict
        return self._guided_search(source_comp, target_comp)

    def _guided_search(self, source_comp: int, target_comp: int) -> bool:
        """Online DAG search pruned by interval labels and seed sets."""
        visited = {source_comp}
        stack = [source_comp]
        while stack:
            current = stack.pop()
            if current in self._seed_reach:
                if target_comp in self._seed_reach[current]:
                    return True
                # The seed's full reachable set is known and excludes the
                # target, so nothing below this branch can succeed.
                continue
            for succ in self._dag.successors(current):
                if succ in visited:
                    continue
                if succ == target_comp:
                    return True
                verdict = self._label_check(succ, target_comp)
                if verdict is True:
                    return True
                if verdict is False:
                    # The whole subtree below succ cannot contain the target.
                    visited.add(succ)
                    continue
                visited.add(succ)
                stack.append(succ)
        return False

    def set_reachability(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Set[int]]:
        target_list = list(targets)
        result: Dict[int, Set[int]] = {}
        for source in sources:
            if not self.graph.has_vertex(source):
                result[source] = set()
                continue
            reached = {
                target
                for target in target_list
                if self.graph.has_vertex(target) and self.reachable(source, target)
            }
            result[source] = reached
        return result
