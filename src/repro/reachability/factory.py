"""Factory for centralized reachability strategies.

Keeps the string names used across the engine, the benchmarks and the
command-line examples in one place.  Every strategy is handed the mutable
:class:`~repro.graph.digraph.DiGraph`; the traversal-based ones (``dfs``,
``msbfs`` and its ``bitset`` alias) pull the graph's cached CSR snapshot on
each query, so a strategy instance stays valid across graph updates.
"""

from __future__ import annotations

from typing import Callable, Dict

from repro.graph.digraph import DiGraph
from repro.reachability.base import ReachabilityIndex
from repro.reachability.dfs import DFSReachability
from repro.reachability.ferrari import FerrariIndex
from repro.reachability.grail import GrailIndex
from repro.reachability.msbfs import MultiSourceBFS
from repro.reachability.transitive_closure import TransitiveClosureIndex

_STRATEGIES: Dict[str, Callable[[DiGraph], ReachabilityIndex]] = {
    "dfs": DFSReachability,
    "msbfs": MultiSourceBFS,
    # Explicit name for the CSR bitset kernel backing "msbfs" since PR 3.
    "bitset": MultiSourceBFS,
    "ferrari": FerrariIndex,
    "grail": GrailIndex,
    "closure": TransitiveClosureIndex,
}


def available_strategies() -> list:
    """Names accepted by :func:`make_reachability_index`."""
    return sorted(_STRATEGIES)


def strategy_class(name: str) -> type:
    """The strategy class registered under ``name`` (without instantiating).

    Used by the planner's cost model and the fleet tuner to consult a
    strategy's :meth:`~repro.reachability.base.ReachabilityIndex.local_cost_factor`
    for *hypothetical* strategies — costing a rebuild candidate must not
    require building its index first.
    """
    try:
        return _STRATEGIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown reachability strategy {name!r}; "
            f"available: {', '.join(available_strategies())}"
        ) from None


def make_reachability_index(name: str, graph: DiGraph, **kwargs) -> ReachabilityIndex:
    """Instantiate the named local reachability strategy over ``graph``."""
    try:
        factory = _STRATEGIES[name.lower()]
    except KeyError:
        raise ValueError(
            f"unknown reachability strategy {name!r}; "
            f"available: {', '.join(available_strategies())}"
        ) from None
    return factory(graph, **kwargs)
