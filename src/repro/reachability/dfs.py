"""Plain DFS reachability (the "DSR-DFS" local strategy).

No index is built; every query performs an early-terminating depth-first
search.  For set queries, one DFS per source is used, pruned by the set of
still-unresolved targets.
"""

from __future__ import annotations

from typing import Dict, Iterable, Set

from repro.graph.digraph import DiGraph
from repro.reachability.base import ReachabilityIndex


class DFSReachability(ReachabilityIndex):
    """Index-free DFS reachability."""

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)

    def reachable(self, source: int, target: int) -> bool:
        if not self.graph.has_vertex(source) or not self.graph.has_vertex(target):
            return False
        if source == target:
            return True
        visited = {source}
        stack = [source]
        while stack:
            vertex = stack.pop()
            for succ in self.graph.successors(vertex):
                if succ == target:
                    return True
                if succ not in visited:
                    visited.add(succ)
                    stack.append(succ)
        return False

    def set_reachability(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Set[int]]:
        target_set = set(targets)
        result: Dict[int, Set[int]] = {}
        for source in sources:
            if not self.graph.has_vertex(source):
                result[source] = set()
                continue
            reached: Set[int] = set()
            if source in target_set:
                reached.add(source)
            remaining = target_set - reached
            visited = {source}
            stack = [source]
            while stack and remaining:
                vertex = stack.pop()
                for succ in self.graph.successors(vertex):
                    if succ not in visited:
                        visited.add(succ)
                        if succ in remaining:
                            reached.add(succ)
                            remaining.discard(succ)
                        stack.append(succ)
            result[source] = reached
        return result
