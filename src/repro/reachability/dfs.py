"""Plain DFS reachability (the "DSR-DFS" local strategy).

No index is built; every query performs an early-terminating depth-first
search.  For set queries, one DFS per source is used, pruned by the set of
still-unresolved targets.

The traversal runs over the graph's cached CSR snapshot
(:meth:`repro.graph.digraph.DiGraph.csr`): successor runs are flat
``array('q')`` slices, and visited marks live in one dense buffer that is
allocated once per snapshot and *generation-stamped* per traversal — a
source that visits 10 vertices costs O(10), not an O(n) clear — which is
substantially faster than chasing per-vertex Python sets and stays correct
across updates because mutations dirty the snapshot.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Set

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.reachability.base import ReachabilityIndex


class DFSReachability(ReachabilityIndex):
    """Index-free DFS reachability over the CSR snapshot.

    Not safe for concurrent queries on one instance: traversals share the
    generation-stamped visited buffer (the engine serialises all local
    evaluation, so this never bites in-tree).  Use one instance per thread
    for standalone concurrent use.
    """

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        # Generation-stamped visited buffer, lazily sized to the current
        # snapshot.  ``visited[i] == stamp`` means "visited this traversal";
        # bumping the stamp invalidates all marks in O(1).
        self._visited: List[int] = []
        self._stamp = 0
        self._buffer_csr: Optional[CSRGraph] = None

    def _next_traversal(self, csr: CSRGraph) -> int:
        """Return a fresh generation stamp for one traversal over ``csr``."""
        if self._buffer_csr is not csr:
            self._buffer_csr = csr
            self._visited = [0] * csr.num_vertices
            self._stamp = 0
        self._stamp += 1
        return self._stamp

    def reachable(self, source: int, target: int) -> bool:
        csr = self.graph.csr()
        if not csr.has_vertex(source) or not csr.has_vertex(target):
            return False
        if source == target:
            return True
        offsets, targets = csr.fwd_offsets, csr.fwd_targets
        goal = csr.index_of(target)
        start = csr.index_of(source)
        stamp = self._next_traversal(csr)
        visited = self._visited
        visited[start] = stamp
        stack = [start]
        while stack:
            vertex = stack.pop()
            for succ in targets[offsets[vertex] : offsets[vertex + 1]]:
                if succ == goal:
                    return True
                if visited[succ] != stamp:
                    visited[succ] = stamp
                    stack.append(succ)
        return False

    def set_reachability(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Set[int]]:
        csr = self.graph.csr()
        offsets, adjacency = csr.fwd_offsets, csr.fwd_targets
        target_set = set(targets)
        # Dense target mapping, shared across the per-source traversals.
        dense_to_target: Dict[int, int] = {}
        for target in target_set:
            if csr.has_vertex(target):
                dense_to_target[csr.index_of(target)] = target

        result: Dict[int, Set[int]] = {}
        for source in sources:
            if not csr.has_vertex(source):
                result[source] = set()
                continue
            reached: Set[int] = set()
            if source in target_set:
                reached.add(source)
            remaining = len(dense_to_target) - len(reached)
            start = csr.index_of(source)
            stamp = self._next_traversal(csr)
            visited = self._visited
            visited[start] = stamp
            stack = [start]
            while stack and remaining:
                vertex = stack.pop()
                for succ in adjacency[offsets[vertex] : offsets[vertex + 1]]:
                    if visited[succ] != stamp:
                        visited[succ] = stamp
                        target = dense_to_target.get(succ)
                        if target is not None and target not in reached:
                            reached.add(target)
                            remaining -= 1
                        stack.append(succ)
            result[source] = reached
        return result
