"""Plain DFS reachability (the "DSR-DFS" local strategy).

No index is built; every query performs an early-terminating depth-first
search.  For set queries, one DFS per source is used, pruned by the set of
still-unresolved targets.

The traversal runs over the graph's cached CSR snapshot
(:meth:`repro.graph.digraph.DiGraph.csr`): successor runs are flat
``array('q')`` slices, and visited marks live in one dense buffer that is
allocated once per snapshot and *generation-stamped* per traversal — a
source that visits 10 vertices costs O(10), not an O(n) clear — which is
substantially faster than chasing per-vertex Python sets and stays correct
across updates because mutations dirty the snapshot.
"""

from __future__ import annotations

import threading
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.reachability.base import ReachabilityIndex
from repro.reachability.packed import VertexRank


class DFSReachability(ReachabilityIndex):
    """Index-free DFS reachability over the CSR snapshot.

    The generation-stamped visited buffer is held per *thread* (the service
    layer runs lock-free reads concurrently against one engine — a shared
    buffer would let one thread's marks truncate another's traversal), so
    one instance is safe under concurrent queries.
    """

    def __init__(self, graph: DiGraph) -> None:
        super().__init__(graph)
        # Per-thread generation-stamped visited buffer, lazily sized to the
        # current snapshot.  ``visited[i] == stamp`` means "visited this
        # traversal"; bumping the stamp invalidates all marks in O(1).
        self._tls = threading.local()

    def _next_traversal(self, csr: CSRGraph) -> Tuple[List[int], int]:
        """Return this thread's visited buffer and a fresh generation stamp."""
        tls = self._tls
        if getattr(tls, "csr", None) is not csr:
            tls.csr = csr
            tls.visited = [0] * csr.num_vertices
            tls.stamp = 0
        tls.stamp += 1
        return tls.visited, tls.stamp

    def reachable(self, source: int, target: int) -> bool:
        csr = self.graph.csr()
        if not csr.has_vertex(source) or not csr.has_vertex(target):
            return False
        if source == target:
            return True
        offsets, targets = csr.fwd_offsets, csr.fwd_targets
        goal = csr.index_of(target)
        start = csr.index_of(source)
        visited, stamp = self._next_traversal(csr)
        visited[start] = stamp
        stack = [start]
        while stack:
            vertex = stack.pop()
            for succ in targets[offsets[vertex] : offsets[vertex + 1]]:
                if succ == goal:
                    return True
                if visited[succ] != stamp:
                    visited[succ] = stamp
                    stack.append(succ)
        return False

    def set_reachability(
        self, sources: Iterable[int], targets: Iterable[int]
    ) -> Dict[int, Set[int]]:
        csr = self.graph.csr()
        offsets, adjacency = csr.fwd_offsets, csr.fwd_targets
        target_set = set(targets)
        # Dense target mapping, shared across the per-source traversals.
        dense_to_target: Dict[int, int] = {}
        for target in target_set:
            if csr.has_vertex(target):
                dense_to_target[csr.index_of(target)] = target

        result: Dict[int, Set[int]] = {}
        for source in sources:
            if not csr.has_vertex(source):
                result[source] = set()
                continue
            reached: Set[int] = set()
            if source in target_set:
                reached.add(source)
            remaining = len(dense_to_target) - len(reached)
            start = csr.index_of(source)
            visited, stamp = self._next_traversal(csr)
            visited[start] = stamp
            stack = [start]
            while stack and remaining:
                vertex = stack.pop()
                for succ in adjacency[offsets[vertex] : offsets[vertex + 1]]:
                    if visited[succ] != stamp:
                        visited[succ] = stamp
                        target = dense_to_target.get(succ)
                        if target is not None and target not in reached:
                            reached.add(target)
                            remaining -= 1
                        stack.append(succ)
            result[source] = reached
        return result

    def set_reachability_bits(
        self,
        sources: Iterable[int],
        rank: VertexRank,
        target_mask: Optional[int] = None,
    ) -> Dict[int, int]:
        """Packed rows from one dense-visited CSR DFS per source.

        Visited marks are bits in a per-traversal ``bytearray`` that then
        becomes the row with one ``int.from_bytes`` — O(V/8 + E) per source
        and no shared state, versus a growing-bigint ``row |= 1 << v`` OR
        per visit (O(reached·V/64)) or boxing the reached set.  The
        optional target mask is applied with a single ``AND`` per
        traversal.  Native only when the caller's rank is the snapshot's
        dense numbering, otherwise the generic bridge runs.
        """
        csr = self.graph.csr()
        if rank.ids != csr.ids:
            return super().set_reachability_bits(sources, rank, target_mask)
        offsets, adjacency = csr.fwd_offsets, csr.fwd_targets
        width = (csr.num_vertices + 7) >> 3
        rows: Dict[int, int] = {}
        for source in sources:
            if not csr.has_vertex(source):
                rows[source] = 0
                continue
            start = csr.index_of(source)
            marks = bytearray(width)
            marks[start >> 3] = 1 << (start & 7)
            stack = [start]
            while stack:
                vertex = stack.pop()
                for succ in adjacency[offsets[vertex] : offsets[vertex + 1]]:
                    if not marks[succ >> 3] >> (succ & 7) & 1:
                        marks[succ >> 3] |= 1 << (succ & 7)
                        stack.append(succ)
            row = int.from_bytes(marks, "little")
            rows[source] = row if target_mask is None else row & target_mask
        return rows
