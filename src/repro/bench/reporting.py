"""Plain-text table formatting and ``BENCH_*.json`` trajectory recording.

The ``benchmarks/`` scripts print tables that mirror the paper's layout
(Table 2, Table 3, ...).  ``format_table`` renders a list of row dictionaries
with aligned columns; ``format_series`` renders the x/y series behind a figure;
``write_bench_json`` records one benchmark's measured numbers as a
``BENCH_<slug>.json`` file at the repository root (the benchmark trajectory —
see ``docs/BENCHMARKS.md`` for the conventions).
"""

from __future__ import annotations

import json
import time
from pathlib import Path
from typing import Dict, List, Mapping, Optional, Sequence


def _stringify(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000:
            return f"{value:,.0f}"
        if abs(value) >= 1:
            return f"{value:.3f}"
        return f"{value:.5f}"
    if isinstance(value, int):
        return f"{value:,}"
    return str(value)


def format_table(
    rows: Sequence[Mapping[str, object]],
    columns: Optional[Sequence[str]] = None,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned plain-text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())
    cells: List[List[str]] = [[str(column) for column in columns]]
    for row in rows:
        cells.append([_stringify(row.get(column, "")) for column in columns])
    widths = [max(len(line[i]) for line in cells) for i in range(len(columns))]
    lines = []
    if title:
        lines.append(title)
    header = "  ".join(cell.ljust(width) for cell, width in zip(cells[0], widths))
    lines.append(header)
    lines.append("-" * len(header))
    for row_cells in cells[1:]:
        lines.append("  ".join(cell.rjust(width) for cell, width in zip(row_cells, widths)))
    return "\n".join(lines)


def write_bench_json(
    slug: str,
    payload: Mapping[str, object],
    directory: Optional[Path] = None,
    merge: bool = False,
) -> Path:
    """Record one benchmark's numbers as ``BENCH_<slug>.json``.

    ``directory`` is where the trajectory lives (callers pass the repository
    root; default: the current working directory).  The payload is written
    under a standard envelope — ``benchmark`` (the slug), ``created_unix``
    and ``data`` — so entries from different benchmarks stay comparable
    across commits.  With ``merge=True`` the new data keys are merged into
    an existing file's ``data`` (used by per-dataset parametrised benchmarks
    that each contribute one entry).
    """
    directory = Path(directory) if directory is not None else Path.cwd()
    path = directory / f"BENCH_{slug}.json"
    data: Dict[str, object] = dict(payload)
    if merge and path.exists():
        try:
            previous = json.loads(path.read_text())
            merged = dict(previous.get("data", {}))
            merged.update(data)
            data = merged
        except (ValueError, OSError, TypeError, AttributeError):
            # Corrupt or unreadable trajectory entry (bad JSON, non-mapping
            # envelope or data): overwrite with this run's numbers.
            data = dict(payload)
    envelope = {
        "benchmark": slug,
        "created_unix": round(time.time(), 3),
        "data": data,
    }
    path.write_text(json.dumps(envelope, indent=2, sort_keys=True) + "\n")
    return path


def format_series(
    series: Mapping[str, Sequence[float]],
    x_values: Sequence[object],
    x_label: str = "x",
    title: Optional[str] = None,
) -> str:
    """Render one or more y-series against shared x values (figure data)."""
    rows: List[Dict[str, object]] = []
    for index, x_value in enumerate(x_values):
        row: Dict[str, object] = {x_label: x_value}
        for name, values in series.items():
            row[name] = values[index] if index < len(values) else ""
        rows.append(row)
    return format_table(rows, columns=[x_label] + list(series.keys()), title=title)
