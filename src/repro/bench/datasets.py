"""Dataset registry: scaled-down analogues of the paper's graph collections.

The paper evaluates on the SNAP graphs Amazon, BerkStan, Google, NotreDame,
Stanford and LiveJournal, on Twitter and Freebase snapshots with up to 1.4
billion edges, and on the synthetic LUBM benchmark (Table 1).  None of those
raw datasets can be shipped or traversed at full scale in pure Python, so each
entry below maps a paper dataset to a deterministic generator that reproduces
its *structural character* (degree skew, SCC density, near-acyclicity) at a
scale the simulator handles comfortably.  Every generator takes a ``scale``
multiplier so the benchmarks can be grown when more time is available.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.graph import generators
from repro.graph.digraph import DiGraph


@dataclass(frozen=True)
class DatasetSpec:
    """One entry of the dataset registry."""

    name: str
    paper_name: str
    paper_vertices: str
    paper_edges: str
    kind: str  # "small" or "large" (Table 1 grouping)
    builder: Callable[[float, int], DiGraph]
    description: str

    def build(self, scale: float = 1.0, seed: int = 0) -> DiGraph:
        """Instantiate the dataset at the given scale."""
        return self.builder(scale, seed)


def _amazon(scale: float, seed: int) -> DiGraph:
    return generators.copurchase_graph(int(800 * scale), avg_degree=6.0, seed=seed)


def _berkstan(scale: float, seed: int) -> DiGraph:
    return generators.web_graph(int(900 * scale), avg_degree=8.0, seed=seed + 1)


def _google(scale: float, seed: int) -> DiGraph:
    return generators.web_graph(int(1000 * scale), avg_degree=5.5, seed=seed + 2)


def _notredame(scale: float, seed: int) -> DiGraph:
    return generators.web_graph(int(600 * scale), avg_degree=4.5, seed=seed + 3)


def _stanford(scale: float, seed: int) -> DiGraph:
    return generators.web_graph(int(700 * scale), avg_degree=7.0, seed=seed + 4)


def _livej_20(scale: float, seed: int) -> DiGraph:
    return generators.social_graph(
        int(1200 * scale), avg_degree=8.0, reciprocity=0.25, seed=seed + 5
    )


def _livej_68(scale: float, seed: int) -> DiGraph:
    return generators.social_graph(
        int(1800 * scale), avg_degree=10.0, reciprocity=0.35, seed=seed + 6
    )


def _twitter(scale: float, seed: int) -> DiGraph:
    return generators.social_graph(
        int(2200 * scale), avg_degree=14.0, reciprocity=0.45, seed=seed + 7
    )


def _freebase(scale: float, seed: int) -> DiGraph:
    return generators.hierarchy_graph(
        int(2000 * scale), branching=6, extra_edge_fraction=0.4, seed=seed + 8
    )


def _lubm(scale: float, seed: int) -> DiGraph:
    return generators.hierarchy_graph(
        int(2000 * scale), branching=10, extra_edge_fraction=0.1, seed=seed + 9
    )


DATASETS: Dict[str, DatasetSpec] = {
    "amazon": DatasetSpec(
        "amazon", "Amazon", "0.4M", "3.3M", "small", _amazon,
        "co-purchase graph: local clusters, high reciprocity",
    ),
    "berkstan": DatasetSpec(
        "berkstan", "BerkStan", "0.7M", "7.6M", "small", _berkstan,
        "web crawl: site-local link structure, hub pages",
    ),
    "google": DatasetSpec(
        "google", "Google", "0.9M", "5.1M", "small", _google,
        "web crawl: bow-tie structure",
    ),
    "notredame": DatasetSpec(
        "notredame", "NotreDame", "0.3M", "1.5M", "small", _notredame,
        "web crawl: sparse, deep link chains",
    ),
    "stanford": DatasetSpec(
        "stanford", "Stanford", "0.3M", "2.3M", "small", _stanford,
        "web crawl",
    ),
    "livej20": DatasetSpec(
        "livej20", "LiveJ-20M", "2.5M", "20.0M", "small", _livej_20,
        "social follower graph, moderate reciprocity",
    ),
    "livej68": DatasetSpec(
        "livej68", "LiveJ-68M", "4.8M", "68.9M", "large", _livej_68,
        "social follower graph, denser core",
    ),
    "twitter": DatasetSpec(
        "twitter", "Twitter-1.4B", "41.7M", "1,468.4M", "large", _twitter,
        "highly reciprocal follower graph: giant SCC, strong condensation",
    ),
    "freebase": DatasetSpec(
        "freebase", "Freebase-1B", "156.6M", "999.9M", "large", _freebase,
        "entity graph: containment hierarchy plus lateral links",
    ),
    "lubm": DatasetSpec(
        "lubm", "LUBM-1B", "222.2M", "961.4M", "large", _lubm,
        "synthetic RDF benchmark: sparse, almost acyclic",
    ),
}

SMALL_DATASETS: List[str] = [
    name for name, spec in DATASETS.items() if spec.kind == "small"
]
LARGE_DATASETS: List[str] = [
    name for name, spec in DATASETS.items() if spec.kind == "large"
]


def load_dataset(name: str, scale: float = 1.0, seed: int = 0) -> DiGraph:
    """Build the named dataset analogue."""
    try:
        spec = DATASETS[name]
    except KeyError:
        raise ValueError(
            f"unknown dataset {name!r}; available: {', '.join(sorted(DATASETS))}"
        ) from None
    return spec.build(scale=scale, seed=seed)
