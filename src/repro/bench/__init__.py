"""Benchmark harness: datasets, workloads, experiment runner and reporting.

Everything under :mod:`repro.bench` is shared between the ``benchmarks/``
scripts (one per table/figure of the paper) and the examples: a registry of
scaled-down synthetic analogues of the paper's graph collections, query
workload generators, an experiment runner that times index builds and queries
across competing approaches, and plain-text table formatting that mirrors the
paper's layout.
"""

from repro.bench.datasets import DATASETS, DatasetSpec, load_dataset
from repro.bench.reporting import format_table
from repro.bench.runner import ApproachResult, ExperimentRunner
from repro.bench.workloads import random_query, random_vertex_sample

__all__ = [
    "DATASETS",
    "DatasetSpec",
    "load_dataset",
    "random_query",
    "random_vertex_sample",
    "ExperimentRunner",
    "ApproachResult",
    "format_table",
]
