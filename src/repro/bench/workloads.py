"""Query workload generators.

The paper's query workloads are random source/target samples: 10×10 for most
experiments, up to 10k×10k for the query-size robustness plots, and 1000×1000
for the sparsely connected LUBM graph.  These helpers produce the equivalent
deterministic samples over any graph.
"""

from __future__ import annotations

import random
from typing import List, Tuple

from repro.graph.digraph import DiGraph


def random_vertex_sample(graph: DiGraph, count: int, seed: int = 0) -> List[int]:
    """Sample ``count`` distinct vertices deterministically."""
    vertices = sorted(graph.vertices())
    if count >= len(vertices):
        return vertices
    rng = random.Random(seed)
    return sorted(rng.sample(vertices, count))


def random_query(
    graph: DiGraph,
    num_sources: int = 10,
    num_targets: int = 10,
    seed: int = 0,
) -> Tuple[List[int], List[int]]:
    """A random DSR query: ``num_sources`` sources and ``num_targets`` targets.

    Sources and targets are drawn independently (they may overlap), matching
    the paper's "randomly selected 10 source and 10 target vertices" setup.
    """
    sources = random_vertex_sample(graph, num_sources, seed=seed)
    targets = random_vertex_sample(graph, num_targets, seed=seed + 104729)
    return sources, targets


def query_size_sweep(
    graph: DiGraph,
    sizes: List[int],
    seed: int = 0,
) -> List[Tuple[int, List[int], List[int]]]:
    """One query per requested ``|S| = |T|`` size (Figure 5 d/h/l/p, Figure 7)."""
    sweep = []
    for index, size in enumerate(sizes):
        sources, targets = random_query(graph, size, size, seed=seed + index)
        sweep.append((size, sources, targets))
    return sweep
