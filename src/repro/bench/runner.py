"""Experiment runner shared by the ``benchmarks/`` scripts.

The runner builds every competing approach over the same graph/partitioning,
runs the same query workload through each of them, and collects comparable
records (index build time, query time, communication volume, result size).
It also verifies that every approach returns the same answer, so a benchmark
run doubles as an end-to-end consistency check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Optional, Set, Tuple

from repro.core.engine import DSREngine
from repro.core.fan import DSRFan
from repro.core.naive import DSRNaive
from repro.giraph.giraph_dsr import GiraphDSR
from repro.giraph.giraphpp_dsr import GiraphPlusPlusDSR
from repro.giraph.giraphpp_eq_dsr import GiraphPlusPlusEqDSR
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning, make_partitioning


@dataclass
class ApproachResult:
    """Measurements for one approach on one workload."""

    approach: str
    index_seconds: float
    query_seconds: float
    num_pairs: int
    messages: int = 0
    bytes_sent: int = 0
    rounds: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        return {
            "approach": self.approach,
            "index_s": round(self.index_seconds, 4),
            "query_s": round(self.query_seconds, 4),
            "pairs": self.num_pairs,
            "messages": self.messages,
            "kbytes": round(self.bytes_sent / 1024.0, 2),
            "rounds": self.rounds,
        }


# Names accepted by ExperimentRunner.run(...).
DSR_APPROACHES = ("dsr", "dsr-noeq")
BASELINE_APPROACHES = ("giraph", "giraph++", "giraph++weq", "dsr-fan", "dsr-naive")
ALL_APPROACHES = DSR_APPROACHES + BASELINE_APPROACHES


class ExperimentRunner:
    """Builds and times competing DSR approaches over one partitioned graph."""

    def __init__(
        self,
        graph: DiGraph,
        num_partitions: int = 5,
        partitioner: str = "metis",
        local_index: str = "msbfs",
        seed: int = 0,
        partitioning: Optional[GraphPartitioning] = None,
    ) -> None:
        self.graph = graph
        self.partitioning = partitioning or make_partitioning(
            graph, num_partitions, strategy=partitioner, seed=seed
        )
        self.local_index = local_index
        self.seed = seed
        self._engines: Dict[str, object] = {}
        self._index_seconds: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # approach construction
    # ------------------------------------------------------------------ #
    def _build(self, approach: str):
        if approach in self._engines:
            return self._engines[approach]
        start = time.perf_counter()
        if approach == "dsr":
            engine = DSREngine(
                self.graph,
                partitioning=self.partitioning,
                local_index=self.local_index,
                use_equivalence=True,
            )
            engine.build_index()
        elif approach == "dsr-noeq":
            engine = DSREngine(
                self.graph,
                partitioning=self.partitioning,
                local_index=self.local_index,
                use_equivalence=False,
            )
            engine.build_index()
        elif approach == "dsr-fan":
            engine = DSRFan(self.partitioning, local_strategy=self.local_index)
        elif approach == "dsr-naive":
            engine = DSRNaive(self.partitioning, local_strategy=self.local_index)
        elif approach == "giraph":
            engine = GiraphDSR(self.graph, self.partitioning)
        elif approach == "giraph++":
            engine = GiraphPlusPlusDSR(self.graph, self.partitioning)
        elif approach == "giraph++weq":
            engine = GiraphPlusPlusEqDSR(self.graph, self.partitioning)
        else:
            raise ValueError(f"unknown approach {approach!r}")
        self._index_seconds[approach] = time.perf_counter() - start
        self._engines[approach] = engine
        return engine

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_approach(
        self,
        approach: str,
        sources: Iterable[int],
        targets: Iterable[int],
    ) -> ApproachResult:
        """Run one approach on one query and record its measurements."""
        engine = self._build(approach)
        sources = list(sources)
        targets = list(targets)
        start = time.perf_counter()
        if isinstance(engine, DSREngine):
            result = engine.query_with_stats(sources, targets)
        else:
            result = engine.query(sources, targets)
        elapsed = time.perf_counter() - start
        return ApproachResult(
            approach=approach,
            index_seconds=self._index_seconds[approach],
            query_seconds=elapsed,
            num_pairs=result.num_pairs,
            messages=result.messages_sent,
            bytes_sent=result.bytes_sent,
            rounds=result.rounds,
        )

    def run(
        self,
        approaches: Iterable[str],
        sources: Iterable[int],
        targets: Iterable[int],
        check_consistency: bool = True,
    ) -> List[ApproachResult]:
        """Run several approaches on the same query.

        With ``check_consistency`` (the default) the runner asserts that every
        approach returns exactly the same set of reachable pairs.
        """
        sources = list(sources)
        targets = list(targets)
        results: List[ApproachResult] = []
        answers: Dict[str, Set[Tuple[int, int]]] = {}
        for approach in approaches:
            engine = self._build(approach)
            start = time.perf_counter()
            if isinstance(engine, DSREngine):
                query_result = engine.query_with_stats(sources, targets)
            else:
                query_result = engine.query(sources, targets)
            elapsed = time.perf_counter() - start
            answers[approach] = query_result.pairs
            results.append(
                ApproachResult(
                    approach=approach,
                    index_seconds=self._index_seconds[approach],
                    query_seconds=elapsed,
                    num_pairs=query_result.num_pairs,
                    messages=query_result.messages_sent,
                    bytes_sent=query_result.bytes_sent,
                    rounds=query_result.rounds,
                )
            )
        if check_consistency and len(answers) > 1:
            reference_name = next(iter(answers))
            reference = answers[reference_name]
            for approach, pairs in answers.items():
                if pairs != reference:
                    raise AssertionError(
                        f"approach {approach!r} disagrees with {reference_name!r}: "
                        f"{len(pairs)} vs {len(reference)} pairs"
                    )
        return results
