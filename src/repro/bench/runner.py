"""Experiment runner shared by the ``benchmarks/`` scripts.

The runner opens every competing approach through the :mod:`repro.api`
backend registry over the same graph/partitioning, runs the same query
workload through each of them, and collects comparable records (index build
time, query time, communication volume, result size).  It also verifies that
every approach returns the same answer, so a benchmark run doubles as an
end-to-end consistency check.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Dict, Iterable, List, Optional, Set, Tuple

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning, make_partitioning


@dataclass
class ApproachResult:
    """Measurements for one approach on one workload."""

    approach: str
    index_seconds: float
    query_seconds: float
    num_pairs: int
    messages: int = 0
    bytes_sent: int = 0
    rounds: int = 0
    extra: Dict[str, object] = field(default_factory=dict)

    def as_row(self) -> Dict[str, object]:
        return {
            "approach": self.approach,
            "index_s": round(self.index_seconds, 4),
            "query_s": round(self.query_seconds, 4),
            "pairs": self.num_pairs,
            "messages": self.messages,
            "kbytes": round(self.bytes_sent / 1024.0, 2),
            "rounds": self.rounds,
        }


# Names accepted by ExperimentRunner.run(...), mapped to the registry backend
# they open plus any config overrides.
_APPROACH_TO_BACKEND: Dict[str, Tuple[str, Dict[str, object]]] = {
    "dsr": ("dsr", {"use_equivalence": True}),
    "dsr-noeq": ("dsr", {"use_equivalence": False}),
    "giraph": ("giraph", {}),
    "giraph++": ("giraphpp", {}),
    "giraph++weq": ("giraphpp-eq", {}),
    "dsr-fan": ("fan", {}),
    "dsr-naive": ("naive", {}),
}

DSR_APPROACHES = ("dsr", "dsr-noeq")
BASELINE_APPROACHES = ("giraph", "giraph++", "giraph++weq", "dsr-fan", "dsr-naive")
ALL_APPROACHES = DSR_APPROACHES + BASELINE_APPROACHES


class ExperimentRunner:
    """Opens and times competing DSR approaches over one partitioned graph."""

    def __init__(
        self,
        graph: DiGraph,
        num_partitions: int = 5,
        partitioner: str = "metis",
        local_index: str = "msbfs",
        seed: int = 0,
        partitioning: Optional[GraphPartitioning] = None,
    ) -> None:
        self.graph = graph
        self.partitioning = partitioning or make_partitioning(
            graph, num_partitions, strategy=partitioner, seed=seed
        )
        self.local_index = local_index
        self.seed = seed
        self._engines: Dict[str, object] = {}
        self._index_seconds: Dict[str, float] = {}

    # ------------------------------------------------------------------ #
    # approach construction
    # ------------------------------------------------------------------ #
    def _build(self, approach: str):
        if approach in self._engines:
            return self._engines[approach]
        try:
            backend, overrides = _APPROACH_TO_BACKEND[approach]
        except KeyError:
            raise ValueError(f"unknown approach {approach!r}") from None
        config = DSRConfig(
            backend=backend,
            num_partitions=self.partitioning.num_partitions,
            local_index=self.local_index,
            seed=self.seed,
            **overrides,
        )
        start = time.perf_counter()
        # Every approach shares the exact same partitioning, so the
        # comparison isolates the execution strategy from the graph cut.
        engine = open_engine(self.graph, config, partitioning=self.partitioning)
        self._index_seconds[approach] = time.perf_counter() - start
        self._engines[approach] = engine
        return engine

    # ------------------------------------------------------------------ #
    # execution
    # ------------------------------------------------------------------ #
    def run_approach(
        self,
        approach: str,
        sources: Iterable[int],
        targets: Iterable[int],
    ) -> ApproachResult:
        """Run one approach on one query and record its measurements."""
        engine = self._build(approach)
        query = ReachQuery(tuple(sources), tuple(targets))
        start = time.perf_counter()
        result = engine.run(query)
        elapsed = time.perf_counter() - start
        return ApproachResult(
            approach=approach,
            index_seconds=self._index_seconds[approach],
            query_seconds=elapsed,
            num_pairs=result.num_pairs,
            messages=result.messages_sent,
            bytes_sent=result.bytes_sent,
            rounds=result.rounds,
        )

    def run(
        self,
        approaches: Iterable[str],
        sources: Iterable[int],
        targets: Iterable[int],
        check_consistency: bool = True,
    ) -> List[ApproachResult]:
        """Run several approaches on the same query.

        With ``check_consistency`` (the default) the runner asserts that every
        approach returns exactly the same set of reachable pairs.
        """
        query = ReachQuery(tuple(sources), tuple(targets))
        results: List[ApproachResult] = []
        answers: Dict[str, Set[Tuple[int, int]]] = {}
        for approach in approaches:
            engine = self._build(approach)
            start = time.perf_counter()
            query_result = engine.run(query)
            elapsed = time.perf_counter() - start
            answers[approach] = query_result.pairs
            results.append(
                ApproachResult(
                    approach=approach,
                    index_seconds=self._index_seconds[approach],
                    query_seconds=elapsed,
                    num_pairs=query_result.num_pairs,
                    messages=query_result.messages_sent,
                    bytes_sent=query_result.bytes_sent,
                    rounds=query_result.rounds,
                )
            )
        if check_consistency and len(answers) > 1:
            reference_name = next(iter(answers))
            reference = answers[reference_name]
            for approach, pairs in answers.items():
                if pairs != reference:
                    raise AssertionError(
                        f"approach {approach!r} disagrees with {reference_name!r}: "
                        f"{len(pairs)} vs {len(reference)} pairs"
                    )
        return results
