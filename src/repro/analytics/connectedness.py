"""Community-connectedness analysis via DSR (Table 7).

Given two communities ``C1`` and ``C2`` and sets of representative members
``S ⊆ C1`` and ``T ⊆ C2``, find every pair ``(s, t)`` with ``s ⇝ t`` — e.g.
"which billionaires are connected to which non-profit organisations".  The
computation is precisely a DSR query over the (partitioned) social graph.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from typing import List, Optional, Set, Tuple

from repro.analytics.community import CommunityDetection, detect_communities
from repro.api import DSRConfig, ReachQuery
from repro.core.engine import DSREngine
from repro.graph.digraph import DiGraph


@dataclass
class ConnectednessReport:
    """Result of one community-connectedness analysis."""

    community_a: int
    community_b: int
    num_sources: int
    num_targets: int
    num_pairs: int
    seconds: float
    pairs: Set[Tuple[int, int]]


class CommunityConnectedness:
    """Detect communities once, then answer connectedness queries via DSR."""

    def __init__(
        self,
        graph: DiGraph,
        engine: Optional[DSREngine] = None,
        num_partitions: int = 4,
        seed: int = 0,
    ) -> None:
        self.graph = graph
        self.seed = seed
        self.engine = engine or DSREngine.from_config(
            graph,
            DSRConfig(num_partitions=num_partitions, local_index="msbfs", seed=seed),
        )
        if not self.engine.is_built:
            self.engine.build_index()
        self.communities: CommunityDetection = detect_communities(graph, seed=seed)

    # ------------------------------------------------------------------ #
    def sample_representatives(
        self, community_id: int, count: int, rng: Optional[random.Random] = None
    ) -> List[int]:
        """Sample up to ``count`` representative members of one community."""
        rng = rng or random.Random(self.seed)
        members = self.communities.members(community_id)
        if len(members) <= count:
            return members
        return sorted(rng.sample(members, count))

    def analyse(
        self,
        community_a: Optional[int] = None,
        community_b: Optional[int] = None,
        representatives: int = 10,
        rng_seed: Optional[int] = None,
    ) -> ConnectednessReport:
        """Run one connectedness analysis between two communities.

        When the community ids are omitted, the two largest communities are
        used (mirroring the paper's setup of picking two sizeable random
        communities).
        """
        by_size = self.communities.communities_by_size()
        if community_a is None:
            community_a = by_size[0][0]
        if community_b is None:
            candidates = [cid for cid, _ in by_size if cid != community_a]
            community_b = candidates[0] if candidates else community_a

        rng = random.Random(self.seed if rng_seed is None else rng_seed)
        sources = self.sample_representatives(community_a, representatives, rng)
        targets = self.sample_representatives(community_b, representatives, rng)

        start = time.perf_counter()
        pairs = self.engine.run(ReachQuery(tuple(sources), tuple(targets))).pairs
        elapsed = time.perf_counter() - start
        return ConnectednessReport(
            community_a=community_a,
            community_b=community_b,
            num_sources=len(sources),
            num_targets=len(targets),
            num_pairs=len(pairs),
            seconds=elapsed,
            pairs=pairs,
        )
