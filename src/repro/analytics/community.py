"""Louvain-style community detection (Blondel et al. [3]).

The paper identifies social-network communities with the iterative Louvain
method and then analyses their connectedness with DSR.  This module implements
the classical two-phase Louvain loop over the *undirected projection* of the
data graph:

1. **Local moving** — repeatedly move vertices to the neighbouring community
   with the largest modularity gain until no move improves modularity.
2. **Aggregation** — collapse every community into a super-vertex and repeat
   on the aggregated graph.

The implementation favours clarity over raw speed; it comfortably handles the
scaled-down social graphs used by the benchmark harness.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Dict, List, Tuple

from repro.graph.digraph import DiGraph


@dataclass
class CommunityDetection:
    """Result of community detection."""

    assignment: Dict[int, int]  # vertex -> community id (dense, 0-based)
    modularity: float

    @property
    def num_communities(self) -> int:
        return len(set(self.assignment.values()))

    def members(self, community_id: int) -> List[int]:
        return sorted(v for v, c in self.assignment.items() if c == community_id)

    def communities_by_size(self) -> List[Tuple[int, int]]:
        """Return ``[(community_id, size)]`` sorted by decreasing size."""
        sizes: Dict[int, int] = {}
        for community in self.assignment.values():
            sizes[community] = sizes.get(community, 0) + 1
        return sorted(sizes.items(), key=lambda kv: (-kv[1], kv[0]))


def _undirected_weights(graph: DiGraph) -> Dict[int, Dict[int, float]]:
    """Undirected projection with edge multiplicities as weights."""
    weights: Dict[int, Dict[int, float]] = {v: {} for v in graph.vertices()}
    for u, v in graph.edges():
        if u == v:
            continue
        weights[u][v] = weights[u].get(v, 0.0) + 1.0
        weights[v][u] = weights[v].get(u, 0.0) + 1.0
    return weights


def _modularity(
    weights: Dict[int, Dict[int, float]], assignment: Dict[int, int], total_weight: float
) -> float:
    """Newman modularity of ``assignment`` over the weighted projection."""
    if total_weight == 0:
        return 0.0
    internal: Dict[int, float] = {}
    degree_sum: Dict[int, float] = {}
    for vertex, neighbours in weights.items():
        community = assignment[vertex]
        degree = sum(neighbours.values())
        degree_sum[community] = degree_sum.get(community, 0.0) + degree
        for neighbour, weight in neighbours.items():
            if assignment[neighbour] == community:
                internal[community] = internal.get(community, 0.0) + weight
    score = 0.0
    two_m = 2.0 * total_weight
    for community in degree_sum:
        score += internal.get(community, 0.0) / two_m
        score -= (degree_sum[community] / two_m) ** 2
    return score


def _one_level(
    weights: Dict[int, Dict[int, float]],
    total_weight: float,
    rng: random.Random,
    max_passes: int = 10,
) -> Dict[int, int]:
    """Phase 1 of Louvain: greedy local moving on one graph level."""
    vertices = list(weights)
    assignment = {vertex: index for index, vertex in enumerate(vertices)}
    # A self entry weights[v][v] (created by the aggregation phase) represents
    # the community-internal weight and counts fully towards the degree.
    vertex_degree = {vertex: sum(weights[vertex].values()) for vertex in vertices}
    community_degree = {assignment[vertex]: vertex_degree[vertex] for vertex in vertices}
    two_m = 2.0 * total_weight if total_weight else 1.0

    improved = True
    passes = 0
    while improved and passes < max_passes:
        improved = False
        passes += 1
        order = list(vertices)
        rng.shuffle(order)
        for vertex in order:
            current = assignment[vertex]
            # Weight from vertex to each neighbouring community (self-loops
            # move together with the vertex, so they are excluded).
            link_weight: Dict[int, float] = {}
            for neighbour, weight in weights[vertex].items():
                if neighbour == vertex:
                    continue
                link_weight[assignment[neighbour]] = (
                    link_weight.get(assignment[neighbour], 0.0) + weight
                )
            # Remove the vertex from its community.
            community_degree[current] -= vertex_degree[vertex]
            best_community = current
            best_gain = link_weight.get(current, 0.0) - (
                community_degree[current] * vertex_degree[vertex] / two_m
            )
            for community, weight in link_weight.items():
                if community == current:
                    continue
                gain = weight - community_degree[community] * vertex_degree[vertex] / two_m
                if gain > best_gain + 1e-12:
                    best_gain = gain
                    best_community = community
            community_degree[best_community] = (
                community_degree.get(best_community, 0.0) + vertex_degree[vertex]
            )
            if best_community != current:
                assignment[vertex] = best_community
                improved = True
    return assignment


def _aggregate(
    weights: Dict[int, Dict[int, float]], assignment: Dict[int, int]
) -> Dict[int, Dict[int, float]]:
    """Phase 2 of Louvain: collapse communities into super-vertices."""
    aggregated: Dict[int, Dict[int, float]] = {}
    for vertex, neighbours in weights.items():
        cu = assignment[vertex]
        aggregated.setdefault(cu, {})
        for neighbour, weight in neighbours.items():
            cv = assignment[neighbour]
            # Intra-community weight becomes a self entry on the super-vertex
            # (each internal edge is seen from both endpoints, so the self
            # entry naturally accumulates twice the internal edge weight —
            # exactly its contribution to the super-vertex degree).
            aggregated[cu][cv] = aggregated[cu].get(cv, 0.0) + weight
    return aggregated


def detect_communities(
    graph: DiGraph,
    max_levels: int = 5,
    seed: int = 0,
) -> CommunityDetection:
    """Detect communities with the Louvain method."""
    rng = random.Random(seed)
    weights = _undirected_weights(graph)
    total_weight = sum(sum(n.values()) for n in weights.values()) / 2.0

    # vertex -> community, refined level by level.
    final_assignment = {vertex: vertex for vertex in graph.vertices()}
    level_weights = weights
    for _ in range(max_levels):
        level_assignment = _one_level(level_weights, total_weight, rng)
        distinct = len(set(level_assignment.values()))
        if distinct == len(level_weights):
            break
        final_assignment = {
            vertex: level_assignment[community]
            for vertex, community in final_assignment.items()
        }
        level_weights = _aggregate(level_weights, level_assignment)
        if distinct <= 2:
            break

    # Renumber communities densely.
    renumber: Dict[int, int] = {}
    dense_assignment: Dict[int, int] = {}
    for vertex in sorted(final_assignment):
        community = final_assignment[vertex]
        if community not in renumber:
            renumber[community] = len(renumber)
        dense_assignment[vertex] = renumber[community]

    return CommunityDetection(
        assignment=dense_assignment,
        modularity=_modularity(weights, dense_assignment, total_weight),
    )
