"""Graph-analytics applications of DSR (Section 4.5-B).

* :mod:`repro.analytics.community` — Louvain-style modularity-based community
  detection (Blondel et al. [3]), used to pick the communities whose
  connectedness the paper analyses in Table 7.
* :mod:`repro.analytics.connectedness` — community-connectedness analysis:
  sample representatives from two communities and find every reachable pair
  between them with a DSR query.
"""

from repro.analytics.community import CommunityDetection, detect_communities
from repro.analytics.connectedness import CommunityConnectedness, ConnectednessReport

__all__ = [
    "detect_communities",
    "CommunityDetection",
    "CommunityConnectedness",
    "ConnectednessReport",
]
