"""Setup shim.

The project is configured through ``pyproject.toml``; this file exists so that
fully offline environments without the ``wheel`` package can still do an
editable install via the legacy path::

    pip install -e . --no-build-isolation --no-use-pep517
"""

from setuptools import setup

setup()
