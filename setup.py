"""Packaging for the DSR (SIGMOD 2016) reproduction.

The project is pure-Python with no runtime dependencies, so the classic
``setup.py`` path works even in fully offline environments without the
``wheel`` package::

    pip install -e . --no-build-isolation

Installing provides the ``repro-dsr`` console command (``repro.cli:main``).
"""

from setuptools import find_packages, setup

setup(
    name="repro-dsr",
    version="1.8.0",
    description=(
        "Reproduction of 'Distributed Set Reachability' (SIGMOD 2016): "
        "DSR index, one-round query protocol, incremental maintenance, an "
        "online query service (planner, result cache, concurrent server) and "
        "a unified typed API (DSRConfig, ReachQuery, backend registry)"
    ),
    long_description=open("README.md", encoding="utf-8").read(),
    long_description_content_type="text/markdown",
    author="paper-repo-growth",
    license="MIT",
    python_requires=">=3.9",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    entry_points={
        "console_scripts": [
            "repro-dsr = repro.cli:main",
        ]
    },
    extras_require={
        "test": ["pytest", "pytest-benchmark"],
        # Optional vectorised kernel backend (DSRConfig(kernels="numpy")):
        # byte-identical answers, just faster.  Nothing imports numpy unless
        # it is selected, so the base install stays dependency-free.
        "numpy": ["numpy"],
    },
    classifiers=[
        "Development Status :: 4 - Beta",
        "Intended Audience :: Science/Research",
        "License :: OSI Approved :: MIT License",
        "Programming Language :: Python :: 3",
        "Topic :: Scientific/Engineering :: Information Analysis",
    ],
)
