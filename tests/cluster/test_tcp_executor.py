"""Tests for ``executor="tcp"``: WorkerHost + TcpExecutor over sockets.

The generic executor contract (shard phases, stale epochs, retirement) is
already covered for tcp by the matrix in ``test_executors.py``; this module
exercises what is tcp-specific — external worker hosts, the rank→host
mapping, kill/reconnect with hydration replay, remote tracebacks, and full
engine parity against the serial executor.
"""

import os
import signal
import time

import pytest

from repro.api import DSRConfig, ReachQuery
from repro.cluster.cluster import SimulatedCluster
from repro.cluster.executors import (
    ShardTaskError,
    StaleEpochError,
    register_shard_loader,
    register_shard_task,
)
from repro.cluster.tcp import (
    TcpExecutor,
    WorkerHost,
    WorkerTransportError,
    parse_host_port,
)
from repro.core.engine import DSREngine
from repro.graph import generators
from repro.graph.traversal import reachable_pairs


# Module-level tasks: managed hosts inherit these via fork, and in-process
# WorkerHosts read the same registry directly.
@register_shard_loader("tcptest.load")
def _load(blob):
    return dict(blob)


@register_shard_task("tcptest.scale")
def _scale(shard, payload):
    return shard["factor"] * payload


@register_shard_task("tcptest.rank_epoch")
def _rank_epoch(shard, payload):
    return (shard["rank"], shard["epoch"])


@register_shard_task("tcptest.boom")
def _boom(shard, payload):
    raise ValueError("intentional tcp failure")


def _blobs(num_workers, epoch=0):
    return {
        rank: {"factor": rank + 1, "rank": rank, "epoch": epoch}
        for rank in range(num_workers)
    }


class TestParseHostPort:
    def test_valid_specs(self):
        assert parse_host_port("127.0.0.1:8000") == ("127.0.0.1", 8000)
        assert parse_host_port("worker-3.internal:9") == ("worker-3.internal", 9)

    @pytest.mark.parametrize("bad", ["nohost", ":123", "host:", "host:abc", ""])
    def test_invalid_specs_rejected(self, bad):
        with pytest.raises(ValueError, match="host:port"):
            parse_host_port(bad)


class TestExternalHosts:
    def test_two_hosts_serve_four_ranks_modulo(self):
        with WorkerHost(collect_deltas=False) as host_a, WorkerHost(
            collect_deltas=False
        ) as host_b:
            executor = TcpExecutor(
                worker_hosts=[
                    f"{host_a.address[0]}:{host_a.address[1]}",
                    f"{host_b.address[0]}:{host_b.address[1]}",
                ]
            )
            cluster = SimulatedCluster(4, executor=executor)
            try:
                cluster.hydrate_shards(0, _blobs(4), "tcptest.load")
                results = cluster.run_shard_phase(
                    "probe", "tcptest.rank_epoch", {r: None for r in range(4)}, epoch=0
                )
                assert results == {r: (r, 0) for r in range(4)}
                # rank r lives on hosts[r % 2]: each host holds two ranks.
                assert sorted(host_a.epochs_held) == [0, 2]
                assert sorted(host_b.epochs_held) == [1, 3]
            finally:
                cluster.close()
            # Departing clients must not stop a shared external host.
            assert not host_a.wait(timeout=0.0)

    def test_stale_epoch_and_remote_traceback(self):
        with WorkerHost(collect_deltas=False) as host:
            executor = TcpExecutor(worker_hosts=[host.address])
            cluster = SimulatedCluster(2, executor=executor)
            try:
                cluster.hydrate_shards(3, _blobs(2, epoch=3), "tcptest.load")
                with pytest.raises(StaleEpochError):
                    cluster.run_shard_phase(
                        "probe", "tcptest.rank_epoch", {0: None}, epoch=2
                    )
                with pytest.raises(ShardTaskError, match="intentional tcp failure"):
                    cluster.run_shard_phase(
                        "boom", "tcptest.boom", {1: None}, epoch=3
                    )
            finally:
                cluster.close()

    def test_restarted_host_rehydrated_by_replay(self):
        host = WorkerHost(collect_deltas=False).start()
        hold_host, port = host.address
        executor = TcpExecutor(
            worker_hosts=[host.address], reconnect_backoff_seconds=0.01
        )
        cluster = SimulatedCluster(2, executor=executor)
        try:
            cluster.hydrate_shards(0, _blobs(2), "tcptest.load")
            assert cluster.run_shard_phase(
                "scale", "tcptest.scale", {0: 10, 1: 10}, epoch=0
            ) == {0: 10, 1: 20}
            # Kill the external host mid-epoch; bring a fresh, EMPTY one up
            # on the same port.
            host.stop()
            host = WorkerHost(host=hold_host, port=port, collect_deltas=False).start()
            assert host.epochs_held == {}
            # The executor reconnects and replays the cached hydrations, so
            # the next phase sees the same shards at the same epoch.
            assert cluster.run_shard_phase(
                "scale", "tcptest.scale", {0: 7, 1: 7}, epoch=0
            ) == {0: 7, 1: 14}
            assert sorted(host.epochs_held) == [0, 1]
        finally:
            cluster.close()
            host.stop()

    def test_unreachable_host_raises_transport_error(self):
        # A port nothing listens on: bind-then-close reserves a dead one.
        import socket as socket_module

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        executor = TcpExecutor(
            worker_hosts=[("127.0.0.1", dead_port)],
            connect_timeout=0.2,
            reconnect_attempts=2,
            reconnect_backoff_seconds=0.01,
        )
        executor.start(1)
        with pytest.raises((WorkerTransportError, ConnectionError)):
            executor.hydrate(0, 0, {"factor": 1}, "tcptest.load")
        executor.close()


class TestManagedFleet:
    def test_killed_host_respawned_with_hydration_replay(self):
        cluster = SimulatedCluster(2, executor="tcp")
        try:
            executor = cluster.executor
            cluster.hydrate_shards(0, _blobs(2), "tcptest.load")
            assert cluster.run_shard_phase(
                "scale", "tcptest.scale", {0: 5, 1: 5}, epoch=0
            ) == {0: 5, 1: 10}
            victim = executor._managed[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            # The next phase hits a dead socket: the executor respawns the
            # host, replays hydration for epoch 0 and retries transparently.
            assert cluster.run_shard_phase(
                "scale", "tcptest.scale", {0: 4, 1: 4}, epoch=0
            ) == {0: 4, 1: 8}
            assert executor._managed[0].pid != victim.pid
        finally:
            cluster.close()

    def test_ping_and_worker_addresses(self):
        executor = TcpExecutor()
        executor.start(2)
        try:
            assert executor.ping(0) and executor.ping(1)
            addresses = executor.worker_addresses
            assert sorted(addresses) == [0, 1]
            assert all(port > 0 for _host, port in addresses.values())
        finally:
            executor.close()

    def test_close_is_idempotent_and_stops_fleet(self):
        executor = TcpExecutor()
        executor.start(2)
        processes = list(executor._managed.values())
        executor.close()
        executor.close()
        deadline = time.time() + 5.0
        for process in processes:
            process.join(timeout=max(0.0, deadline - time.time()))
            assert not process.is_alive()


class TestEngineParity:
    """The acceptance bar: answers, message counts and byte counts over tcp
    must be identical to the serial executor, across updates/epochs too."""

    @pytest.fixture
    def graph(self):
        return generators.social_graph(150, avg_degree=4, seed=5)

    def _engines(self, graph, **tcp_kwargs):
        serial = DSREngine.from_config(
            graph.copy(), DSRConfig(num_partitions=3, local_index="msbfs", seed=2)
        )
        tcp = DSREngine.from_config(
            graph.copy(),
            DSRConfig(
                num_partitions=3, local_index="msbfs", seed=2,
                executor="tcp", **tcp_kwargs,
            ),
        )
        serial.build_index()
        tcp.build_index()
        return serial, tcp

    def test_answers_and_costs_match_serial(self, graph):
        serial, tcp = self._engines(graph)
        try:
            vertices = sorted(graph.vertices())
            for offset in (0, 20, 40):
                query = ReachQuery(
                    tuple(vertices[offset : offset + 6]),
                    tuple(vertices[100 + offset : 106 + offset]),
                )
                a = serial.run(query)
                b = tcp.run(query)
                assert set(b.pairs) == set(a.pairs)
                assert b.messages_sent == a.messages_sent
                assert b.bytes_sent == a.bytes_sent
        finally:
            serial.close()
            tcp.close()

    def test_updates_flush_and_requery_match(self, graph):
        serial, tcp = self._engines(graph)
        try:
            vertices = sorted(graph.vertices())
            for engine in (serial, tcp):
                engine.insert_edge(vertices[0], vertices[-1])
                engine.delete_edge(*next(iter(graph.edges())))
                engine.flush_updates()
            query = ReachQuery(tuple(vertices[:8]), tuple(vertices[90:98]))
            a, b = serial.run(query), tcp.run(query)
            assert set(b.pairs) == set(a.pairs)
            assert b.messages_sent == a.messages_sent
            # The flush moved both engines to a new epoch; tcp rehydrated its
            # hosts over the wire to get there.
            assert set(b.pairs) == reachable_pairs(
                serial.graph, vertices[:8], vertices[90:98]
            )
        finally:
            serial.close()
            tcp.close()

    def test_external_hosts_via_config(self, graph):
        with WorkerHost(collect_deltas=False) as host_a, WorkerHost(
            collect_deltas=False
        ) as host_b:
            hosts = [
                f"{host_a.address[0]}:{host_a.address[1]}",
                f"{host_b.address[0]}:{host_b.address[1]}",
            ]
            serial, tcp = self._engines(graph, worker_hosts=hosts)
            try:
                vertices = sorted(graph.vertices())
                query = ReachQuery(tuple(vertices[:6]), tuple(vertices[80:86]))
                assert set(tcp.run(query).pairs) == set(serial.run(query).pairs)
                # Both external hosts actually hold shards (3 ranks % 2 hosts).
                assert host_a.epochs_held and host_b.epochs_held
            finally:
                serial.close()
                tcp.close()
