"""Tests for the simulated cluster substrate (messages, network, phases)."""

import pytest

from repro.cluster.cluster import ClusterStats, PhaseTiming, SimulatedCluster
from repro.cluster.message import Message, payload_size
from repro.cluster.network import Network


class TestPayloadSize:
    def test_primitives(self):
        assert payload_size(None) == 1
        assert payload_size(True) == 1
        assert payload_size(7) == 4
        assert payload_size(3.5) == 8
        assert payload_size("abcd") == 5

    def test_containers_grow_with_content(self):
        assert payload_size([1, 2, 3]) > payload_size([1])
        assert payload_size({"a": 1}) > payload_size({})

    def test_nested_structures(self):
        nested = {"sources": [1, 2, 3], "handles": {4: [5, 6]}}
        assert payload_size(nested) > payload_size({"sources": [1, 2, 3]})

    def test_object_with_message_size_hook(self):
        class Sized:
            def message_size(self):
                return 123

        assert payload_size(Sized()) == 123

    def test_message_records_size(self):
        message = Message(source=0, destination=1, payload=[1, 2, 3])
        assert message.size_bytes == payload_size([1, 2, 3])


class TestNetwork:
    def test_send_and_deliver(self):
        network = Network()
        network.send(0, 1, "hello")
        network.send(0, 1, "world")
        messages = network.deliver(1)
        assert [m.payload for m in messages] == ["hello", "world"]
        assert network.deliver(1) == []

    def test_stats_accumulate(self):
        network = Network()
        network.send(0, 1, [1, 2, 3])
        network.send(1, 2, [4])
        network.complete_round()
        assert network.stats.messages_sent == 2
        assert network.stats.bytes_sent > 0
        assert network.stats.rounds == 1

    def test_pending_counts(self):
        network = Network()
        network.send(0, 1, "x")
        network.send(0, 2, "y")
        assert network.pending() == 2
        assert network.pending(1) == 1
        network.deliver(1)
        assert network.pending() == 1

    def test_reset_stats_keeps_inboxes(self):
        network = Network()
        network.send(0, 1, "x")
        network.reset_stats()
        assert network.stats.messages_sent == 0
        assert network.pending(1) == 1


class TestSimulatedCluster:
    def test_requires_workers(self):
        with pytest.raises(ValueError):
            SimulatedCluster(0)

    def test_run_phase_returns_per_worker_results(self):
        cluster = SimulatedCluster(3)
        results = cluster.run_phase("square", lambda rank: rank * rank)
        assert results == {0: 0, 1: 1, 2: 4}

    def test_phase_timings_recorded(self):
        cluster = SimulatedCluster(2)
        cluster.run_phase("noop", lambda rank: None)
        assert len(cluster.stats.phases) == 1
        assert cluster.stats.parallel_seconds >= 0
        assert cluster.stats.total_seconds >= cluster.stats.parallel_seconds

    def test_worker_subset(self):
        cluster = SimulatedCluster(4)
        results = cluster.run_phase("subset", lambda rank: rank, workers=[1, 3])
        assert set(results) == {1, 3}

    def test_parallel_execution_mode(self):
        cluster = SimulatedCluster(4, parallel=True)
        results = cluster.run_phase("echo", lambda rank: rank)
        assert results == {0: 0, 1: 1, 2: 2, 3: 3}

    def test_master_phase(self):
        cluster = SimulatedCluster(2)
        assert cluster.run_master("combine", lambda: 42) == 42
        assert cluster.stats.phases[-1].name == "combine"

    def test_snapshot_merges_network_stats(self):
        cluster = SimulatedCluster(2)
        cluster.send(0, 1, [1, 2])
        cluster.complete_round()
        snapshot = cluster.snapshot()
        assert snapshot["messages_sent"] == 1
        assert snapshot["rounds"] == 1
        assert "parallel_seconds" in snapshot

    def test_reset_stats(self):
        cluster = SimulatedCluster(2)
        cluster.send(0, 1, "x")
        cluster.run_phase("noop", lambda rank: None)
        cluster.reset_stats()
        assert cluster.snapshot()["messages_sent"] == 0
        assert cluster.stats.phases == []


class TestTimingModel:
    def test_parallel_time_is_max_of_workers(self):
        timing = PhaseTiming(name="x", per_worker_seconds={0: 0.1, 1: 0.5, 2: 0.2})
        assert timing.parallel_seconds == 0.5
        assert abs(timing.total_seconds - 0.8) < 1e-9

    def test_cluster_stats_sum_phases(self):
        stats = ClusterStats(
            phases=[
                PhaseTiming(name="a", per_worker_seconds={0: 0.1, 1: 0.3}),
                PhaseTiming(name="b", per_worker_seconds={0: 0.2}),
            ]
        )
        assert abs(stats.parallel_seconds - 0.5) < 1e-9
        assert abs(stats.total_seconds - 0.6) < 1e-9
