"""Crash-safety and leak tests for the shared-memory shard ledger.

The contract under test:

* every segment a publish creates is unlinked by the time the engine closes
  (and retired epochs are unlinked as soon as the workers drop them);
* killing a worker process mid-stream neither leaks segments nor breaks the
  engine — the executor respawns the worker, replays its hydrations by
  segment name and the query completes transparently;
* none of it may emit ``resource_tracker`` noise (the historical failure
  mode of attach-registered segments, bpo-39959).
"""

import os
import signal
import subprocess
import sys
import textwrap
import time

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.cluster.shm import ShmLedger, attach, shm_available
from repro.graph import generators
from repro.obs.runtime import global_registry

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable or disabled"
)

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.dirname(os.path.abspath(__file__))))


def _shm_entries(prefix="dsr"):
    try:
        return {name for name in os.listdir("/dev/shm") if name.startswith(prefix)}
    except FileNotFoundError:  # pragma: no cover - non-Linux
        return set()


def _processes_engine(num_partitions=3, seed=11):
    graph = generators.social_graph(260, avg_degree=5, seed=seed)
    return graph, open_engine(
        graph,
        DSRConfig(
            num_partitions=num_partitions, local_index="msbfs", executor="processes"
        ),
    )


class TestLedgerLifecycle:
    def test_create_retire_close_unlink(self):
        ledger = ShmLedger(prefix="dsrtest")
        ledger.create(0, 0, 128)
        ledger.create(0, 1, 128)
        ledger.create(1, 0, 128)
        assert ledger.segment_count() == 3
        assert ledger.retire_below(1) == 2
        assert ledger.segment_count() == 1
        names = ledger.segment_names()
        assert all("_e1_" in name for name in names)
        ledger.close()
        assert ledger.segment_count() == 0
        for name in names:
            with pytest.raises(FileNotFoundError):
                attach(name)

    def test_same_key_replacement_unlinks_previous(self):
        ledger = ShmLedger(prefix="dsrtest")
        first = ledger.create(0, 0, 64).name
        second = ledger.create(0, 0, 64).name
        assert first != second
        assert ledger.segment_count() == 1
        with pytest.raises(FileNotFoundError):
            attach(first)
        segment = attach(second)
        segment.close()
        ledger.close()

    def test_attach_survives_unlink(self):
        # POSIX semantics the whole epoch-retire design leans on: an
        # attached mapping stays readable after the owner unlinks the name.
        ledger = ShmLedger(prefix="dsrtest")
        segment = ledger.create(0, 0, 64)
        segment.buf[:4] = b"abcd"
        reader = attach(segment.name)
        ledger.close()
        assert bytes(reader.buf[:4]) == b"abcd"
        reader.close()


class TestEngineSegmentLifecycle:
    def test_engine_close_unlinks_all_segments(self):
        before = _shm_entries()
        graph, engine = _processes_engine()
        try:
            engine.run(ReachQuery((0, 1, 2), (100, 150, 200)))
            created = _shm_entries() - before
            assert created, "processes engine should publish shm segments"
        finally:
            engine.close()
        assert _shm_entries() - before == set()

    def test_epoch_retire_unlinks_old_segments(self):
        graph, engine = _processes_engine()
        try:
            ledger = engine.index._shm_ledger
            assert ledger is not None
            edges = list(graph.edges())
            for u, v in edges[:2]:
                engine.delete_edge(u, v)
            engine.flush_updates()  # epoch 1: retains {0, 1}
            for u, v in edges[2:4]:
                engine.delete_edge(u, v)
            engine.flush_updates()  # epoch 2: retires epoch 0
            held_epochs = {
                int(name.split("_e")[1].split("_")[0])
                for name in ledger.segment_names()
            }
            assert held_epochs == {1, 2}
        finally:
            engine.close()

    def test_disabled_via_env_falls_back_to_pickled(self, monkeypatch):
        monkeypatch.setenv("REPRO_SHM", "0")
        before = _shm_entries()
        graph, engine = _processes_engine(seed=13)
        try:
            result = engine.run(ReachQuery((0, 1), (40, 60)))
            assert engine.index._shm_ledger is None
            assert _shm_entries() - before == set()
            reference = open_engine(
                graph, DSRConfig(num_partitions=3, local_index="msbfs")
            )
            assert result.pairs == reference.run(ReachQuery((0, 1), (40, 60))).pairs
            reference.close()
        finally:
            engine.close()


class TestWorkerCrashRecovery:
    def test_killed_worker_respawns_and_query_completes(self):
        registry = global_registry()
        was_enabled = registry.enabled
        registry.enabled = True
        respawns_before = registry.counter_total("dsr_worker_respawns_total")
        graph, engine = _processes_engine()
        try:
            query = ReachQuery(tuple(range(0, 30)), tuple(range(120, 160)))
            expected = engine.run(query).pairs
            executor = engine.cluster.executor
            victim_process, _ = executor._workers[1]
            os.kill(victim_process.pid, signal.SIGKILL)
            victim_process.join(timeout=5.0)
            # The next query hits the dead pipe, respawns rank 1, replays
            # its hydrations from the cache (attach-by-name) and completes.
            assert engine.run(query).pairs == expected
            new_process, _ = executor._workers[1]
            assert new_process.pid != victim_process.pid
            respawns_after = registry.counter_total("dsr_worker_respawns_total")
            assert respawns_after > respawns_before
        finally:
            registry.enabled = was_enabled
            engine.close()

    def test_killed_worker_leaks_no_segments(self):
        before = _shm_entries()
        graph, engine = _processes_engine(seed=17)
        try:
            engine.run(ReachQuery((0, 1), (50, 90)))
            process, _ = engine.cluster.executor._workers[0]
            os.kill(process.pid, signal.SIGKILL)
            process.join(timeout=5.0)
        finally:
            engine.close()
        assert _shm_entries() - before == set()


class TestNoResourceTrackerNoise:
    def test_subprocess_run_emits_no_tracker_warnings(self):
        """Full engine lifecycle in a clean interpreter: stderr must not
        mention the resource tracker (leaked segment or double-unregister)."""
        script = textwrap.dedent(
            """
            from repro.api import DSRConfig, ReachQuery, open_engine
            from repro.graph import generators

            graph = generators.social_graph(200, avg_degree=4, seed=5)
            engine = open_engine(
                graph,
                DSRConfig(num_partitions=3, local_index="msbfs", executor="processes"),
            )
            engine.run(ReachQuery((0, 1, 2), (50, 100)))
            edges = list(graph.edges())[:2]
            for u, v in edges:
                engine.delete_edge(u, v)
            engine.run(ReachQuery((0, 1, 2), (50, 100)))
            engine.close()
            print("DONE")
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=180,
            env=env,
        )
        assert completed.returncode == 0, completed.stderr
        assert "DONE" in completed.stdout
        # No tracker noise of either historical flavour: "leaked
        # shared_memory objects" at exit, or KeyError tracebacks from a
        # double unregister.
        assert "resource_tracker" not in completed.stderr, completed.stderr

    def test_subprocess_sigkill_midstream_leaves_no_segments(self):
        """Kill an engine process (master) without close(): the atexit hook
        never runs, but the resource tracker unlinks what the crash left —
        /dev/shm must converge to empty for this engine's segments."""
        marker = f"dsrcrash{os.getpid()}"
        script = textwrap.dedent(
            f"""
            import os, signal
            from repro.cluster.shm import ShmLedger

            ledger = ShmLedger(prefix={marker!r})
            ledger.create(0, 0, 4096)
            ledger.create(0, 1, 4096)
            print("READY", flush=True)
            os.kill(os.getpid(), signal.SIGKILL)
            """
        )
        env = dict(os.environ)
        env["PYTHONPATH"] = os.path.join(REPO_ROOT, "src")
        completed = subprocess.run(
            [sys.executable, "-c", script],
            capture_output=True,
            text=True,
            timeout=60,
            env=env,
        )
        assert completed.returncode != 0  # SIGKILL
        assert "READY" in completed.stdout
        # The dead process's resource tracker reaps the segments; give it a
        # moment on slow machines.
        deadline = time.time() + 10.0
        while time.time() < deadline and _shm_entries(marker):
            time.sleep(0.1)
        assert _shm_entries(marker) == set()
