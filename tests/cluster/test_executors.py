"""Tests for the pluggable worker executors and the sharded cluster API.

The executor matrix honours ``REPRO_TEST_EXECUTORS`` (comma-separated subset
of ``serial,threads,processes``) so CI can re-run this module pinned to one
backend — e.g. the ``executor=processes`` matrix job.
"""

import os
import threading
import time

import pytest

from repro.cluster.cluster import SimulatedCluster
from repro.cluster.executors import (
    EXECUTOR_NAMES,
    ProcessExecutor,
    ShardTaskError,
    StaleEpochError,
    make_executor,
    register_shard_loader,
    register_shard_task,
)
from repro.cluster.network import Network, NetworkStats

EXECUTORS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_TEST_EXECUTORS", ",".join(EXECUTOR_NAMES)
    ).split(",")
    if name.strip()
)


# Module-level test tasks: worker processes inherit these via fork, and the
# in-process executors read the same registry directly.
@register_shard_loader("test.load")
def _load(blob):
    return dict(blob)


@register_shard_task("test.scale")
def _scale(shard, payload):
    return shard["factor"] * payload


@register_shard_task("test.epoch")
def _epoch(shard, payload):
    return shard["epoch"]


@register_shard_task("test.boom")
def _boom(shard, payload):
    raise ValueError("intentional")


def _hydrated_cluster(executor, num_workers=3, epoch=0):
    cluster = SimulatedCluster(num_workers, executor=executor)
    blobs = {
        rank: {"factor": rank + 1, "epoch": epoch} for rank in range(num_workers)
    }
    cluster.hydrate_shards(epoch, blobs, "test.load")
    return cluster


class TestFactory:
    def test_all_names_construct(self):
        for name in EXECUTOR_NAMES:
            executor = make_executor(name)
            assert executor.name == name
            executor.close()

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError, match="unknown executor"):
            make_executor("gpu")

    def test_parallel_flag_maps_to_threads(self):
        cluster = SimulatedCluster(2, parallel=True)
        assert cluster.executor.name == "threads"
        cluster.close()

    def test_default_is_serial(self):
        cluster = SimulatedCluster(2)
        assert cluster.executor.name == "serial"
        cluster.close()


@pytest.mark.parametrize("executor", EXECUTORS)
class TestShardPhases:
    def test_shard_task_runs_per_rank(self, executor):
        cluster = _hydrated_cluster(executor)
        results = cluster.run_shard_phase(
            "scale", "test.scale", {0: 10, 1: 10, 2: 10}, epoch=0
        )
        assert results == {0: 10, 1: 20, 2: 30}
        cluster.close()

    def test_payload_subset_of_ranks(self, executor):
        cluster = _hydrated_cluster(executor)
        results = cluster.run_shard_phase("scale", "test.scale", {2: 5}, epoch=0)
        assert results == {2: 15}
        cluster.close()

    def test_stale_epoch_raises(self, executor):
        cluster = _hydrated_cluster(executor, epoch=4)
        with pytest.raises(StaleEpochError):
            cluster.run_shard_phase("epoch", "test.epoch", {0: None}, epoch=3)
        cluster.close()

    def test_retired_epoch_raises_newer_survives(self, executor):
        cluster = _hydrated_cluster(executor, epoch=0)
        # Hydrate epoch 2 and retire everything below epoch 1.
        cluster.hydrate_shards(
            2,
            {rank: {"factor": 1, "epoch": 2} for rank in range(3)},
            "test.load",
            retire_below=1,
        )
        with pytest.raises(StaleEpochError):
            cluster.run_shard_phase("epoch", "test.epoch", {0: None}, epoch=0)
        assert cluster.run_shard_phase("epoch", "test.epoch", {1: None}, epoch=2) == {1: 2}
        cluster.close()

    def test_timings_recorded_with_real_seconds(self, executor):
        cluster = _hydrated_cluster(executor)
        cluster.run_shard_phase("scale", "test.scale", {0: 1, 1: 1}, epoch=0)
        phase = cluster.stats.phases[-1]
        assert phase.name == "scale"
        assert set(phase.per_worker_seconds) == {0, 1}
        assert phase.real_seconds >= 0.0
        assert cluster.snapshot()["real_seconds"] >= 0.0
        cluster.close()


class TestProcessExecutor:
    def test_task_error_carries_remote_traceback(self):
        cluster = _hydrated_cluster("processes")
        with pytest.raises(ShardTaskError, match="intentional"):
            cluster.run_shard_phase("boom", "test.boom", {0: None}, epoch=0)
        cluster.close()

    def test_closure_phases_fall_back_to_master(self):
        # Closures cannot cross the process boundary; run_phase still works
        # (executed at the master) so index builds run on any executor.
        cluster = SimulatedCluster(3, executor="processes")
        assert cluster.run_phase("square", lambda rank: rank * rank) == {0: 0, 1: 1, 2: 4}
        cluster.close()

    def test_workers_hydrate_once_not_per_phase(self):
        cluster = _hydrated_cluster("processes")
        for _ in range(5):
            assert cluster.run_shard_phase(
                "scale", "test.scale", {0: 2, 1: 2, 2: 2}, epoch=0
            ) == {0: 2, 1: 4, 2: 6}
        cluster.close()

    def test_close_is_idempotent(self):
        executor = ProcessExecutor()
        executor.start(2)
        executor.close()
        executor.close()

    def test_concurrent_shard_phases_from_many_threads(self):
        cluster = _hydrated_cluster("processes", num_workers=2)
        errors = []

        def worker():
            try:
                for _ in range(10):
                    result = cluster.run_shard_phase(
                        "scale", "test.scale", {0: 3, 1: 3}, epoch=0
                    )
                    assert result == {0: 3, 1: 6}
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=worker) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors
        cluster.close()


class TestNetworkConcurrency:
    """Satellite fix: counters must be exact under concurrent senders."""

    def test_concurrent_sends_never_lose_increments(self):
        network = Network()
        sends_per_thread = 300
        num_threads = 8

        def blast(rank):
            for i in range(sends_per_thread):
                network.send(rank, (rank + 1) % num_threads, [i])

        threads = [
            threading.Thread(target=blast, args=(rank,)) for rank in range(num_threads)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert network.stats.messages_sent == sends_per_thread * num_threads
        assert network.pending() == sends_per_thread * num_threads
        expected_bytes = sum(
            m.size_bytes for rank in range(num_threads) for m in network.deliver(rank)
        )
        assert network.stats.bytes_sent == expected_bytes

    def test_concurrent_rounds_counted_exactly(self):
        network = Network()
        threads = [
            threading.Thread(target=lambda: [network.complete_round() for _ in range(100)])
            for _ in range(4)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert network.stats.rounds == 400

    def test_absorb_merges_under_lock(self):
        network = Network()
        private = NetworkStats(messages_sent=3, bytes_sent=120, rounds=1)

        def absorb_many():
            for _ in range(100):
                network.absorb(private)

        threads = [threading.Thread(target=absorb_many) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert network.stats.messages_sent == 3 * 400
        assert network.stats.bytes_sent == 120 * 400
        assert network.stats.rounds == 400


class TestThreadExecutorParallelism:
    def test_overlapping_sleep_phases_overlap_in_time(self):
        cluster = SimulatedCluster(4, executor="threads")
        start = time.perf_counter()
        cluster.run_phase("sleep", lambda rank: time.sleep(0.05))
        elapsed = time.perf_counter() - start
        # Four 50ms sleeps in parallel should take well under 4 * 50ms.
        assert elapsed < 0.18
        assert cluster.stats.phases[-1].total_seconds >= 0.18
        cluster.close()
