"""Self-healing fleet: probe → breaker → ejection → failover → re-admission.

Pins the acceptance criterion: an ejected replica receives **zero** routed
queries while its breaker is open, and a recovered probe re-admits it
automatically.  All backoff windows run on an injected fake clock.
"""

import os
import random

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.graph import generators
from repro.obs import use_registry
from repro.resilience import (
    BREAKER_OPEN,
    BackoffPolicy,
    FailPointSpec,
    HealthSupervisor,
    use_failpoints,
)
from repro.service.server import DSRService

FAST = BackoffPolicy(base_seconds=1.0, multiplier=2.0, cap_seconds=60.0, jitter=0.0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


def _queries(graph, count=20, seed=11):
    rng = random.Random(seed)
    verts = sorted(graph.vertices())
    for _ in range(count):
        yield ReachQuery(
            tuple(rng.sample(verts, rng.choice([1, 4, 8]))),
            tuple(rng.sample(verts, rng.choice([1, 4, 8]))),
        )


@pytest.fixture
def graph():
    return generators.social_graph(120, avg_degree=3, seed=4)


# Default serial, but honour REPRO_TEST_EXECUTORS (first entry) so the CI
# chaos job runs ejection/re-admission against replicas owning real process
# pools.
FLEET_EXECUTOR = (
    os.environ.get("REPRO_TEST_EXECUTORS", "serial").split(",")[0].strip()
)


@pytest.fixture
def fleet(graph):
    fleet = open_engine(
        graph,
        DSRConfig(
            num_partitions=2, replicas=2, seed=2, executor=FLEET_EXECUTOR
        ),
    )
    yield fleet
    fleet.close()


class TestEjectionAndReadmission:
    def _supervise(self, fleet, clock, failure_threshold=2):
        supervisor = HealthSupervisor(
            probe_interval_seconds=60.0,
            failure_threshold=failure_threshold,
            backoff=FAST,
            clock=clock,
        )
        fleet.enable_health(supervisor=supervisor, start=False)
        return supervisor

    def test_failed_replica_is_ejected_and_gets_zero_routes(self, graph, fleet):
        clock = FakeClock()
        supervisor = self._supervise(fleet, clock)
        assert supervisor.target_names() == ["replica:0", "replica:1"]
        with use_registry() as registry:
            # Sabotage replica 1: its probe reports the failed rebuild.
            fleet.replicas[1].rebuild_error = RuntimeError("wedged rebuild")
            supervisor.probe_now()
            supervisor.probe_now()
            assert fleet.router.ejected_ids() == (1,)
            assert (
                registry.counter_value("dsr_replica_ejections_total", replica="1")
                == 1
            )
        # THE acceptance pin: while open, replica 1 receives zero routed
        # queries — every decision lands on the healthy replica.
        before = fleet.router.route_counts()[1]
        for query in _queries(graph):
            assert fleet.route(query).replica.replica_id == 0
        assert fleet.router.route_counts()[1] == before
        assert fleet.stats()["ejected"] == [1]

        # Recovery: clear the fault, let the backoff window elapse, probe.
        fleet.replicas[1].rebuild_error = None
        clock.advance(FAST.delay(1))
        assert supervisor.probe_now()["replica:1"] is True
        assert fleet.router.ejected_ids() == ()
        routed = {fleet.route(q).replica.replica_id for q in _queries(graph)}
        assert 1 in routed  # re-admitted replica serves traffic again

    def test_ejected_replica_keeps_answering_correctly_elsewhere(self, graph, fleet):
        clock = FakeClock()
        supervisor = self._supervise(fleet, clock, failure_threshold=1)
        verts = sorted(graph.vertices())
        query = ReachQuery(tuple(verts[:5]), tuple(verts[-5:]))
        expected = set(fleet.replicas[0].engine.run(query).pairs)
        fleet.replicas[1].rebuild_error = RuntimeError("boom")
        supervisor.probe_now()
        decision = fleet.route(query)
        assert decision.replica.replica_id == 0
        assert set(decision.replica.engine.run(query).pairs) == expected

    def test_all_ejected_falls_back_to_serving(self, graph, fleet):
        # Availability over purity: with every replica ejected the router
        # still answers (on a suspect replica) instead of failing closed.
        fleet.router.eject(0)
        fleet.router.eject(1)
        verts = sorted(graph.vertices())
        decision = fleet.route(ReachQuery((verts[0],), (verts[-1],)))
        assert decision.replica is not None

    def test_pinned_table_entry_bypassed_while_ejected(self, graph, fleet):
        verts = sorted(graph.vertices())
        query = ReachQuery(tuple(verts[:4]), tuple(verts[-4:]))
        fingerprint_decision = fleet.route(query, record=False)
        # Pin the query's class to replica 1, then eject replica 1: the
        # pin must be bypassed, failing over to the healthy replica.
        fleet.router.install_table({fingerprint_decision.fingerprint: 1})
        assert fleet.route(query, record=False).replica.replica_id == 1
        fleet.router.eject(1)
        failover = fleet.route(query, record=False)
        assert failover.replica.replica_id == 0
        assert failover.table_hit is False
        fleet.router.readmit(1)
        assert fleet.route(query, record=False).replica.replica_id == 1

    def test_rebuild_failpoint_marks_replica_unhealthy(self, fleet):
        clock = FakeClock()
        supervisor = self._supervise(fleet, clock, failure_threshold=1)
        replica = fleet.replicas[0]
        with use_failpoints(
            [FailPointSpec("fleet.rebuild", value="RuntimeError")]
        ) as registry:
            other = "closure" if replica.strategy != "closure" else "msbfs"
            assert replica.rebuild_to(other, background=False)
            assert registry.fired("fleet.rebuild") == 1
        assert replica.rebuild_error is not None
        assert replica.probe() is False
        supervisor.probe_now()
        assert supervisor.breaker("replica:0").state == BREAKER_OPEN
        assert fleet.router.ejected_ids() == (0,)
        # A later clean rebuild clears the error and the probe recovers.
        assert replica.rebuild_to(other, background=False)
        assert replica.probe() is True


class TestServiceIntegration:
    def test_service_supervises_fleet_replicas(self, fleet):
        # A long interval keeps the background loop quiet: the test drives
        # probes synchronously, the service only owns the lifecycle.
        service = DSRService(
            fleet, num_workers=1, health_probe_interval_seconds=300.0
        )
        try:
            assert service.health is not None
            assert service.health.target_names() == ["replica:0", "replica:1"]
            assert service.health.running
            health = service.stats()["health"]
            assert set(health["targets"]) == {"replica:0", "replica:1"}
            assert all(
                row["state"] == "closed" for row in health["targets"].values()
            )
        finally:
            service.close()
        assert not service.health.running

    def test_service_supervises_tcp_worker_hosts(self, graph):
        from repro.core.engine import DSREngine

        engine = DSREngine.from_config(
            graph.copy(),
            DSRConfig(num_partitions=2, local_index="msbfs", seed=2, executor="tcp"),
        )
        engine.build_index()
        service = DSRService(
            engine, num_workers=1, health_probe_interval_seconds=300.0
        )
        try:
            assert service.health is not None
            assert service.health.target_names() == ["worker:0", "worker:1"]
            # ping() round-trips through the live hosts.
            assert service.health.probe_now() == {
                "worker:0": True,
                "worker:1": True,
            }
        finally:
            service.close()
            engine.close()

    def test_health_disabled_by_default(self, fleet):
        service = DSRService(fleet, num_workers=1)
        try:
            assert service.health is None
            assert "health" not in service.stats()
        finally:
            service.close()
