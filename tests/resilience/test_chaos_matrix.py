"""Deterministic chaos matrix over the serving stack.

The acceptance bar this file pins: under a seeded fault schedule, every
in-flight query either returns the **correct answer** or a **typed error**
(``DeadlineExceededError`` / ``WorkerTransportError``) within its budget —
no hangs, no wrong answers.  Faults are injected with counted failpoint
windows, never probabilities, so every run exercises the same schedule.
"""

import os
import signal
import time

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.cluster.cluster import SimulatedCluster
from repro.cluster.executors import (
    ShardTaskError,
    register_shard_loader,
    register_shard_task,
)
from repro.cluster.shm import shm_available
from repro.cluster.tcp import TcpExecutor, WorkerTransportError
from repro.core.engine import DSREngine
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.resilience import FailPointSpec, use_failpoints
from repro.service.protocol import QueryResponse, UpdateRequest, UpdateResponse
from repro.service.server import DSRService, ErrorResponse

TYPED_ERRORS = {"DeadlineExceededError", "WorkerTransportError"}


@register_shard_loader("chaostest.load")
def _load(blob):
    return dict(blob)


@register_shard_task("chaostest.noop")
def _noop(shard, payload):
    return shard["v"]


@pytest.fixture(scope="module")
def graph():
    return generators.social_graph(140, avg_degree=4, seed=7)


@pytest.fixture(scope="module")
def tcp_engine(graph):
    engine = DSREngine.from_config(
        graph.copy(),
        DSRConfig(num_partitions=2, local_index="msbfs", seed=2, executor="tcp"),
    )
    engine.build_index()
    yield engine
    engine.close()


def _expected(graph, query):
    return set(reachable_pairs(graph, query.sources, query.targets))


class TestWorkerKillThroughService:
    def test_killed_host_is_transparent_to_the_caller(self, graph, tcp_engine):
        service = DSRService(tcp_engine, num_workers=1)
        try:
            verts = sorted(graph.vertices())
            query = ReachQuery(tuple(verts[:5]), tuple(verts[-5:]))
            executor = tcp_engine.cluster.executor
            victim = executor._managed[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            response = service.handle(query)
            assert isinstance(response, QueryResponse)
            assert set(response.pairs) == _expected(graph, query)
            assert executor._managed[0].pid != victim.pid
        finally:
            service.close()


class TestSlowRpcAgainstDeadline:
    def test_injected_stall_burns_the_budget_into_a_typed_error(
        self, graph, tcp_engine
    ):
        service = DSRService(tcp_engine, num_workers=1)
        try:
            verts = sorted(graph.vertices())
            query = ReachQuery(
                tuple(verts[:5]), tuple(verts[-5:]), deadline_ms=100
            )
            started = time.monotonic()
            with use_failpoints(
                [FailPointSpec("tcp.call", action="delay", value=0.3)]
            ) as registry:
                response = service.handle(query)
                assert registry.fired("tcp.call") >= 1
            elapsed = time.monotonic() - started
            assert isinstance(response, ErrorResponse)
            assert response.error == "DeadlineExceededError"
            assert elapsed < 2.0  # budget + injected stalls, never a hang
            # With the stall gone the same query answers correctly.
            clean = service.handle(
                ReachQuery(tuple(verts[:5]), tuple(verts[-5:]), deadline_ms=5000)
            )
            assert isinstance(clean, QueryResponse)
            assert set(clean.pairs) == _expected(graph, query)
        finally:
            service.close()


class TestTransportExhaustion:
    def test_reconnect_exhaustion_is_typed_and_recoverable(self):
        executor = TcpExecutor(
            reconnect_attempts=2,
            reconnect_backoff_seconds=0.01,
            reconnect_backoff_cap_seconds=0.02,
        )
        cluster = SimulatedCluster(1, executor=executor)
        try:
            cluster.hydrate_shards(0, {0: {"v": 1}}, "chaostest.load")
            specs = [
                # One dropped call forces a reconnect; the replay fault then
                # poisons every reconnect attempt until the budget is spent.
                FailPointSpec("tcp.call", value="ConnectionError", count=1),
                FailPointSpec(
                    "tcp.hydrate.replay", value="ConnectionError", count=None
                ),
            ]
            with use_failpoints(specs) as registry:
                with pytest.raises(WorkerTransportError, match="2 attempts"):
                    cluster.run_shard_phase(
                        "noop", "chaostest.noop", {0: None}, epoch=0
                    )
                assert registry.fired("tcp.hydrate.replay") == 2
            # Faults cleared: the next call reconnects, replays the cached
            # hydration for real and the shard answers again.
            result = cluster.run_shard_phase("noop", "chaostest.noop", {0: None}, epoch=0)
            assert 0 in result
        finally:
            cluster.close()


@pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable or disabled"
)
class TestShmAttachFault:
    def test_worker_side_attach_fault_surfaces_as_task_error(self):
        graph = generators.social_graph(160, avg_degree=4, seed=9)
        # Arm before the engine forks its workers: children inherit the armed
        # registry, so the injection fires *inside the worker process*.
        # after=1 lets each worker's initial build-time attach succeed; the
        # re-hydration attach after a flush is the one that blows up.
        with use_failpoints(
            [FailPointSpec("shm.attach", value="RuntimeError", after=1, count=None)]
        ):
            engine = open_engine(
                graph,
                DSRConfig(
                    num_partitions=2, local_index="msbfs", executor="processes"
                ),
            )
            try:
                query = ReachQuery((0, 1, 2), (80, 120))
                assert set(engine.run(query).pairs) == set(
                    reachable_pairs(graph, query.sources, query.targets)
                )
                u, v = next(iter(graph.edges()))
                engine.delete_edge(u, v)
                with pytest.raises(ShardTaskError) as info:
                    engine.flush_updates()
                assert "shm.attach" in str(info.value)
            finally:
                engine.close()


class TestFlushFault:
    def test_flush_fault_is_reported_then_recovers(self, graph):
        engine = open_engine(
            graph.copy(), DSRConfig(num_partitions=2, local_index="msbfs", seed=2)
        )
        service = DSRService(engine, num_workers=1)
        try:
            with use_failpoints(
                [FailPointSpec("service.flush", value="RuntimeError", count=1)]
            ):
                failed = service.handle(UpdateRequest(op="flush"))
                assert isinstance(failed, ErrorResponse)
                assert failed.error == "RuntimeError"
                assert "service.flush" in failed.message
                # The window is spent: the very next flush succeeds.
                recovered = service.handle(UpdateRequest(op="flush"))
            assert isinstance(recovered, UpdateResponse)
            assert recovered.op == "flush"
        finally:
            service.close()
            engine.close()


class TestSeededMatrix:
    def test_every_query_is_correct_or_typed_within_budget(self, graph, tcp_engine):
        """The headline run: a seeded schedule of healthy calls, dropped
        connections and injected stalls, every response checked against
        ground truth or the typed-error whitelist, every latency bounded."""
        service = DSRService(tcp_engine, num_workers=1)
        verts = sorted(graph.vertices())
        cases = []
        for i in range(12):
            sources = tuple(verts[(i * 7) % 100 : (i * 7) % 100 + 4])
            targets = tuple(verts[-((i * 5) % 90 + 4) : len(verts) - (i * 5) % 90])
            cases.append((sources, targets))
        outcomes = []
        try:
            for i, (sources, targets) in enumerate(cases):
                # Specs carry mutable hit accounting — build a fresh window
                # per case so earlier cases never exhaust later ones.
                if i % 4 == 2:  # stall window: tight budget → typed error
                    query = ReachQuery(sources, targets, deadline_ms=80)
                    specs = [
                        FailPointSpec("tcp.call", action="delay", value=0.25)
                    ]
                elif i % 4 == 3:  # drop window: reconnect rides it out
                    query = ReachQuery(sources, targets, deadline_ms=10_000)
                    specs = [
                        FailPointSpec("tcp.call", value="ConnectionError", count=1)
                    ]
                else:  # healthy traffic, with and without a generous budget
                    query = ReachQuery(
                        sources,
                        targets,
                        deadline_ms=10_000 if i % 2 else None,
                    )
                    specs = []
                started = time.monotonic()
                with use_failpoints(specs):
                    response = service.handle(query)
                elapsed_ms = (time.monotonic() - started) * 1000.0
                if isinstance(response, ErrorResponse):
                    assert response.error in TYPED_ERRORS, response
                    outcomes.append(response.error)
                else:
                    assert isinstance(response, QueryResponse)
                    assert set(response.pairs) == _expected(graph, query)
                    outcomes.append("ok")
                budget = query.deadline_ms or 10_000
                assert elapsed_ms < budget + 5_000  # bounded, never a hang
            # The schedule is deterministic: stall windows produced typed
            # errors, drop windows and healthy traffic produced answers.
            assert outcomes.count("DeadlineExceededError") == 3
            assert outcomes.count("ok") == 9
        finally:
            service.close()
