"""BackoffPolicy unit tests + the TcpExecutor reconnect-schedule regression.

The regression matters: the old reconnect loop slept ``backoff * attempt``,
so the *first* retry slept ``0.05 * 0 = 0`` seconds — a dead peer was
hammered immediately, with no cap and no jitter.  The tests pin both the
policy's deterministic sequence and the exact sleeps the executor performs.
"""

import pytest

from repro.cluster.tcp import TcpExecutor, WorkerHost, WorkerTransportError
from repro.resilience import BackoffPolicy


class TestPolicyValidation:
    def test_defaults_are_valid(self):
        policy = BackoffPolicy()
        assert policy.base_seconds == 0.05
        assert policy.cap_seconds == 1.0

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"base_seconds": 0.0},
            {"base_seconds": -1.0},
            {"multiplier": 0.5},
            {"base_seconds": 2.0, "cap_seconds": 1.0},
            {"jitter": -0.1},
            {"jitter": 1.5},
        ],
    )
    def test_bad_parameters_rejected(self, kwargs):
        with pytest.raises(ValueError):
            BackoffPolicy(**kwargs)

    def test_attempt_is_one_based(self):
        with pytest.raises(ValueError, match="1-based"):
            BackoffPolicy().delay(0)


class TestSchedule:
    def test_never_zero_and_monotonic_base(self):
        policy = BackoffPolicy(base_seconds=0.05, cap_seconds=10.0, jitter=0.0)
        delays = policy.delays(6)
        assert all(d > 0 for d in delays)
        assert delays == (0.05, 0.1, 0.2, 0.4, 0.8, 1.6)

    def test_cap_bounds_every_delay(self):
        policy = BackoffPolicy(base_seconds=0.1, cap_seconds=0.3, jitter=0.0)
        assert policy.delays(5) == (0.1, 0.2, 0.3, 0.3, 0.3)

    def test_jitter_only_stretches_within_bound(self):
        policy = BackoffPolicy(base_seconds=0.1, cap_seconds=1.0, jitter=0.25)
        plain = BackoffPolicy(base_seconds=0.1, cap_seconds=1.0, jitter=0.0)
        for attempt in range(1, 8):
            raw = plain.delay(attempt)
            jittered = policy.delay(attempt)
            assert raw <= jittered <= raw * 1.25

    def test_deterministic_per_seed(self):
        a = BackoffPolicy(seed=7).delays(8)
        b = BackoffPolicy(seed=7).delays(8)
        assert a == b
        # A different seed draws different jitter fractions somewhere.
        assert a != BackoffPolicy(seed=8).delays(8)


class TestTcpReconnectRegression:
    """The executor's reconnect sleeps must come from the shared policy."""

    def test_sleep_sequence_matches_policy_and_first_sleep_is_positive(
        self, monkeypatch
    ):
        host = WorkerHost(collect_deltas=False).start()
        executor = TcpExecutor(
            worker_hosts=[host.address],
            reconnect_attempts=5,
            reconnect_backoff_seconds=0.01,
            reconnect_backoff_cap_seconds=0.04,
        )
        executor.start(1)
        try:
            assert executor.ping(0)
            # Kill the only host: every reconnect attempt now fails fast
            # (connection refused), so the loop walks its whole schedule.
            host.stop()
            sleeps = []
            monkeypatch.setattr(
                "repro.cluster.tcp.time.sleep", lambda s: sleeps.append(s)
            )
            with pytest.raises(WorkerTransportError):
                executor.ping(0)
        finally:
            executor.close()
        # attempts=5 → sleeps before attempts 1..4 (none before attempt 0).
        expected = list(executor._backoff.delays(4))
        assert sleeps == pytest.approx(expected)
        # The regression: the old linear schedule slept 0.0 first.
        assert min(sleeps) > 0
        # Capped (+ jitter headroom), and actually exponential early on.
        assert max(sleeps) <= 0.04 * 1.1
        assert sleeps[1] > sleeps[0]
