"""Unit tests for the deterministic fault-injection registry."""

import time

import pytest

from repro.resilience import (
    FailPointError,
    FailPointRegistry,
    FailPointSpec,
    failpoint,
    global_failpoints,
    use_failpoints,
)


class TestSpecValidation:
    def test_defaults(self):
        spec = FailPointSpec("tcp.call")
        assert spec.action == "raise"
        assert spec.count == 1

    def test_unknown_action_rejected(self):
        with pytest.raises(ValueError, match="unknown failpoint action"):
            FailPointSpec("x", action="explode")

    def test_unknown_raise_type_rejected(self):
        with pytest.raises(ValueError, match="cannot raise"):
            FailPointSpec("x", action="raise", value="KeyboardInterrupt")

    def test_delay_needs_seconds(self):
        with pytest.raises(ValueError, match="non-negative seconds"):
            FailPointSpec("x", action="delay", value="fast")

    def test_call_needs_callable(self):
        with pytest.raises(ValueError, match="callable"):
            FailPointSpec("x", action="call", value=3)

    @pytest.mark.parametrize(
        "kwargs",
        [{"after": -1}, {"count": 0}, {"probability": 1.5}, {"probability": -0.1}],
    )
    def test_window_bounds(self, kwargs):
        with pytest.raises(ValueError):
            FailPointSpec("x", **kwargs)

    def test_from_dict_rejects_unknown_keys_and_missing_site(self):
        with pytest.raises(ValueError, match="unknown failpoint spec keys"):
            FailPointSpec.from_dict({"site": "x", "when": "now"})
        with pytest.raises(ValueError, match="needs a 'site'"):
            FailPointSpec.from_dict({"action": "drop"})


class TestMatching:
    def test_site_must_match_exactly(self):
        spec = FailPointSpec("tcp.call")
        assert spec.matches("tcp.call", {})
        assert not spec.matches("tcp.recv", {})

    def test_labels_are_a_subset_match(self):
        spec = FailPointSpec("tcp.call", labels={"rank": 0})
        assert spec.matches("tcp.call", {"rank": 0, "kind": "task"})
        assert not spec.matches("tcp.call", {"rank": 1})
        assert not spec.matches("tcp.call", {})


class TestTriggerWindow:
    def test_after_and_count_window(self):
        registry = FailPointRegistry([FailPointSpec("s", after=2, count=2)])
        outcomes = []
        for _ in range(6):
            try:
                registry.evaluate("s", {})
                outcomes.append(False)
            except FailPointError:
                outcomes.append(True)
        # Skip hits 1-2, fire on hits 3-4, then exhausted.
        assert outcomes == [False, False, True, True, False, False]
        assert registry.fired("s") == 2

    def test_count_none_fires_forever(self):
        registry = FailPointRegistry([FailPointSpec("s", count=None)])
        for _ in range(5):
            with pytest.raises(FailPointError):
                registry.evaluate("s", {})
        assert registry.fired() == 5

    def test_probability_is_seed_deterministic(self):
        def pattern(seed):
            registry = FailPointRegistry(
                [FailPointSpec("s", count=None, probability=0.5)], seed=seed
            )
            fired = []
            for _ in range(20):
                try:
                    registry.evaluate("s", {})
                    fired.append(False)
                except FailPointError:
                    fired.append(True)
            return fired

        assert pattern(3) == pattern(3)
        assert any(pattern(3)) and not all(pattern(3))


class TestActions:
    def test_raise_named_type(self):
        registry = FailPointRegistry(
            [FailPointSpec("s", action="raise", value="ValueError")]
        )
        with pytest.raises(ValueError, match="failpoint 's' injected"):
            registry.evaluate("s", {})

    def test_drop_raises_connection_error(self):
        registry = FailPointRegistry([FailPointSpec("s", action="drop")])
        with pytest.raises(ConnectionError, match="dropped the connection"):
            registry.evaluate("s", {})

    def test_delay_sleeps(self, monkeypatch):
        slept = []
        monkeypatch.setattr(time, "sleep", lambda s: slept.append(s))
        registry = FailPointRegistry([FailPointSpec("s", action="delay", value=0.2)])
        registry.evaluate("s", {})
        assert slept == [0.2]

    def test_call_receives_labels(self):
        seen = []
        registry = FailPointRegistry(
            [FailPointSpec("s", action="call", value=seen.append)]
        )
        registry.evaluate("s", {"rank": 3})
        assert seen == [{"rank": 3}]


class TestRegistryLifecycle:
    def test_disabled_registry_is_a_no_op(self):
        # The global registry is unarmed by default: the compiled-in hook
        # must never fire (and never pay more than a branch).
        assert not global_failpoints().enabled
        failpoint("tcp.call", rank=0)  # does nothing

    def test_use_failpoints_scopes_the_schedule(self):
        with use_failpoints([FailPointSpec("s")]) as registry:
            assert global_failpoints() is registry
            with pytest.raises(FailPointError):
                failpoint("s")
            assert registry.fired("s") == 1
        assert not global_failpoints().enabled

    def test_clear_and_configure(self):
        registry = FailPointRegistry()
        assert not registry.enabled
        registry.add(FailPointSpec("s"))
        assert registry.enabled
        registry.clear()
        assert not registry.enabled
        registry.configure([FailPointSpec("a"), FailPointSpec("b")])
        assert {spec.site for spec in registry.specs()} == {"a", "b"}


class TestEnvBootstrap:
    def test_from_env_parses_json_schedule(self):
        registry = FailPointRegistry.from_env(
            '[{"site": "tcp.call", "action": "drop", '
            '"labels": {"rank": 0}, "after": 2, "count": 1}]'
        )
        (spec,) = registry.specs()
        assert spec.site == "tcp.call"
        assert spec.action == "drop"
        assert spec.labels == {"rank": 0}
        assert (spec.after, spec.count) == (2, 1)
        assert registry.enabled

    def test_from_env_rejects_bad_payloads(self):
        with pytest.raises(ValueError, match="not valid JSON"):
            FailPointRegistry.from_env("{nope")
        with pytest.raises(ValueError, match="JSON list"):
            FailPointRegistry.from_env('{"site": "x"}')
