"""DSRClient retry discipline + stuck-thread accounting at shutdown.

The client may blindly re-send *idempotent* requests after a reset, but an
``UpdateRequest`` that may have reached the server must never be re-sent —
a blind retry could apply the update twice.  The fake server below counts
exactly how many request frames arrived, which is the whole point.
"""

import socket
import threading
import time

import pytest

from repro.obs import use_registry
from repro.service.protocol import (
    ErrorResponse,
    StatsRequest,
    UpdateRequest,
    dumps,
)
from repro.service.server import DSRClient, _count_stuck_threads


class FlakyServer:
    """Line-framed fake server: drops the first ``fail_first`` requests
    (connection closed before any reply), answers the rest.  ``received``
    counts request frames that actually arrived at the server."""

    def __init__(self, fail_first=0, reply=True):
        self.fail_first = fail_first
        self.reply = reply
        self.received = []
        self._listener = socket.create_server(("127.0.0.1", 0))
        self._listener.settimeout(0.2)
        self.host, self.port = self._listener.getsockname()
        self._stop = threading.Event()
        self._thread = threading.Thread(target=self._serve, daemon=True)
        self._thread.start()

    def _serve(self):
        while not self._stop.is_set():
            try:
                conn, _ = self._listener.accept()
            except socket.timeout:
                continue
            except OSError:
                break
            # A makefile() stream holds an io-ref on the socket: close the
            # streams explicitly or conn.close() leaves the fd open and the
            # client sees a hang instead of the EOF this server simulates.
            reader = conn.makefile("r", encoding="utf-8", newline="\n")
            writer = conn.makefile("w", encoding="utf-8", newline="\n")
            try:
                line = reader.readline()
                if not line:
                    continue
                self.received.append(line)
                if len(self.received) <= self.fail_first or not self.reply:
                    if not self.reply:
                        # Hold the connection open without answering until
                        # the client's own timeout fires.
                        self._stop.wait(5.0)
                    continue  # close without replying
                writer.write(dumps(ErrorResponse("TestReply", "ok")) + "\n")
                writer.flush()
            finally:
                for stream in (reader, writer):
                    try:
                        stream.close()
                    except OSError:
                        pass
                conn.close()

    def close(self):
        self._stop.set()
        self._listener.close()
        self._thread.join(timeout=5.0)


class TestClientRetryDiscipline:
    def test_update_that_may_have_reached_the_server_is_never_resent(self):
        server = FlakyServer(fail_first=1)
        try:
            client = DSRClient(
                server.host, server.port, retries=3, retry_backoff_seconds=0.01
            )
            with pytest.raises(ConnectionError, match="not retrying"):
                client.request(UpdateRequest(op="flush"))
            client.close()
            # The whole point: exactly ONE frame left the client.  A blind
            # retry here would let the server apply the update twice.
            assert len(server.received) == 1
        finally:
            server.close()

    def test_idempotent_request_is_retried_to_success(self):
        server = FlakyServer(fail_first=1)
        try:
            client = DSRClient(
                server.host, server.port, retries=3, retry_backoff_seconds=0.01
            )
            response = client.request(StatsRequest())
            assert isinstance(response, ErrorResponse)
            assert response.error == "TestReply"
            # Attempt 1 was dropped after the send; attempt 2 re-sent it.
            assert len(server.received) == 2
            assert client.reconnects >= 1
            client.close()
        finally:
            server.close()

    def test_timeout_is_never_retried(self):
        server = FlakyServer(reply=False)
        try:
            client = DSRClient(
                server.host,
                server.port,
                request_timeout=0.2,
                retries=3,
                retry_backoff_seconds=0.01,
            )
            with pytest.raises(TimeoutError, match="no response"):
                client.request(StatsRequest())
            client.close()
            # The server may still be executing the request: one frame only.
            assert len(server.received) == 1
        finally:
            server.close()


class TestStuckThreadAccounting:
    def test_surviving_thread_is_counted_and_published(self):
        release = threading.Event()
        blocked = threading.Thread(
            target=release.wait, name="wedged-worker", daemon=True
        )
        blocked.start()
        try:
            with use_registry() as registry:
                assert _count_stuck_threads([blocked], "test.close") == 1
                assert (
                    registry.counter_value(
                        "dsr_shutdown_stuck_threads", where="test.close"
                    )
                    == 1
                )
        finally:
            release.set()
            blocked.join(timeout=5.0)

    def test_clean_shutdown_counts_nothing(self):
        done = threading.Thread(target=lambda: None)
        done.start()
        done.join(timeout=5.0)
        with use_registry() as registry:
            assert _count_stuck_threads([done], "test.close") == 0
            assert (
                registry.counter_value(
                    "dsr_shutdown_stuck_threads", where="test.close"
                )
                == 0
            )


class TestClientRetryBackoffIsBounded:
    def test_connect_failures_exhaust_with_a_typed_error(self):
        # A listener that was closed immediately: every connect is refused,
        # the client's retry loop must exhaust and fail fast (no hang).
        probe = socket.create_server(("127.0.0.1", 0))
        host, port = probe.getsockname()
        probe.close()
        started = time.monotonic()
        with pytest.raises((ConnectionError, OSError)):
            DSRClient(host, port, retries=2, retry_backoff_seconds=0.01)
        assert time.monotonic() - started < 5.0
