"""Crash-during-hydration: kill a worker host mid hydrate replay.

The chaos case the reconnect loop was restructured for: a managed host dies,
its substitute is killed *again* while the executor is replaying cached
hydrations into it (via the ``tcp.hydrate.replay`` failpoint), and the loop
must still converge — respawning a second substitute per attempt — and
answer with exact serial parity.
"""

import os
import signal

import pytest

from repro.api import DSRConfig, ReachQuery
from repro.cluster.cluster import SimulatedCluster
from repro.cluster.executors import register_shard_loader, register_shard_task
from repro.core.engine import DSREngine
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.resilience import FailPointSpec, use_failpoints


@register_shard_loader("crashtest.load")
def _load(blob):
    return dict(blob)


@register_shard_task("crashtest.scale")
def _scale(shard, payload):
    return shard["factor"] * payload


def _kill_managed_host(executor):
    """A ``call``-action failpoint body: SIGKILL the rank's current host."""

    def kill(labels):
        victim = executor._managed[labels["rank"]]
        os.kill(victim.pid, signal.SIGKILL)
        victim.join(timeout=5.0)

    return kill


class TestCrashDuringHydrationReplay:
    def test_executor_converges_after_mid_replay_kill(self):
        cluster = SimulatedCluster(2, executor="tcp")
        try:
            executor = cluster.executor
            cluster.hydrate_shards(
                0, {0: {"factor": 1}, 1: {"factor": 2}}, "crashtest.load"
            )
            assert cluster.run_shard_phase(
                "scale", "crashtest.scale", {0: 10, 1: 10}, epoch=0
            ) == {0: 10, 1: 20}
            # Kill host 0; the next call triggers reconnect + replay.  The
            # failpoint kills the *substitute* right before the replayed
            # hydrate is sent, so attempt N's replay hits a fresh corpse and
            # attempt N+1 must respawn again.
            first_victim = executor._managed[0]
            os.kill(first_victim.pid, signal.SIGKILL)
            first_victim.join(timeout=5.0)
            with use_failpoints(
                [
                    FailPointSpec(
                        "tcp.hydrate.replay",
                        action="call",
                        value=_kill_managed_host(executor),
                        labels={"rank": 0},
                        count=1,
                    )
                ]
            ) as registry:
                assert cluster.run_shard_phase(
                    "scale", "crashtest.scale", {0: 7, 1: 7}, epoch=0
                ) == {0: 7, 1: 14}
                assert registry.fired("tcp.hydrate.replay") == 1
            # Two generations of host 0 died; the survivor is a third pid.
            assert executor._managed[0].pid != first_victim.pid
            assert executor._managed[0].is_alive()
        finally:
            cluster.close()

    @pytest.mark.parametrize("kills", [1, 2])
    def test_engine_answers_with_exact_serial_parity(self, kills):
        graph = generators.social_graph(150, avg_degree=4, seed=5)
        serial = DSREngine.from_config(
            graph.copy(),
            DSRConfig(num_partitions=3, local_index="msbfs", seed=2),
        )
        tcp = DSREngine.from_config(
            graph.copy(),
            DSRConfig(
                num_partitions=3, local_index="msbfs", seed=2, executor="tcp"
            ),
        )
        serial.build_index()
        tcp.build_index()
        try:
            executor = tcp.cluster.executor
            vertices = sorted(graph.vertices())
            query = ReachQuery(tuple(vertices[:6]), tuple(vertices[100:106]))
            expected = serial.run(query)
            assert set(tcp.run(query).pairs) == set(expected.pairs)
            victim = executor._managed[0]
            os.kill(victim.pid, signal.SIGKILL)
            victim.join(timeout=5.0)
            with use_failpoints(
                [
                    FailPointSpec(
                        "tcp.hydrate.replay",
                        action="call",
                        value=_kill_managed_host(executor),
                        labels={"rank": 0},
                        count=kills,
                    )
                ]
            ) as registry:
                result = tcp.run(query)
                assert registry.fired("tcp.hydrate.replay") == kills
            # Exact parity: pairs, message and byte accounting all converge
            # to the serial ground truth despite the mid-replay crashes.
            assert set(result.pairs) == set(expected.pairs)
            assert result.messages_sent == expected.messages_sent
            assert result.bytes_sent == expected.bytes_sent
            assert set(result.pairs) == reachable_pairs(
                graph, vertices[:6], vertices[100:106]
            )
        finally:
            serial.close()
            tcp.close()
