"""Circuit-breaker state machine + HealthSupervisor probe/eject/admit tests.

Every test drives the breaker's backoff window with an injected fake clock —
no sleeping through wall time, fully deterministic transitions.
"""

import pytest

from repro.obs import use_registry
from repro.resilience import (
    BREAKER_CLOSED,
    BREAKER_HALF_OPEN,
    BREAKER_OPEN,
    BackoffPolicy,
    CircuitBreaker,
    HealthSupervisor,
)

FAST = BackoffPolicy(base_seconds=1.0, multiplier=2.0, cap_seconds=60.0, jitter=0.0)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestCircuitBreaker:
    def test_opens_after_threshold_consecutive_failures(self):
        clock = FakeClock()
        breaker = CircuitBreaker("t", failure_threshold=3, backoff=FAST, clock=clock)
        assert breaker.record_failure() == BREAKER_CLOSED
        assert breaker.record_failure() == BREAKER_CLOSED
        assert breaker.record_failure() == BREAKER_OPEN
        assert breaker.is_open
        assert breaker.open_count == 1

    def test_success_resets_the_failure_streak(self):
        clock = FakeClock()
        breaker = CircuitBreaker("t", failure_threshold=2, backoff=FAST, clock=clock)
        breaker.record_failure()
        breaker.record_success()
        assert breaker.record_failure() == BREAKER_CLOSED
        assert breaker.consecutive_failures == 1

    def test_open_suppresses_probes_until_backoff_elapses(self):
        clock = FakeClock()
        breaker = CircuitBreaker("t", failure_threshold=1, backoff=FAST, clock=clock)
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert not breaker.allow_probe()
        assert breaker.seconds_until_probe() == pytest.approx(1.0)
        clock.advance(1.0)
        # Window elapsed: exactly one probe is allowed, via half-open.
        assert breaker.allow_probe()
        assert breaker.state == BREAKER_HALF_OPEN

    def test_half_open_failure_reopens_with_longer_backoff(self):
        clock = FakeClock()
        breaker = CircuitBreaker("t", failure_threshold=1, backoff=FAST, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow_probe()
        breaker.record_failure()
        assert breaker.state == BREAKER_OPEN
        assert breaker.open_count == 2
        # Exponential: the second open waits base * multiplier.
        assert breaker.seconds_until_probe() == pytest.approx(2.0)

    def test_half_open_success_closes_and_resets(self):
        clock = FakeClock()
        breaker = CircuitBreaker("t", failure_threshold=1, backoff=FAST, clock=clock)
        breaker.record_failure()
        clock.advance(1.0)
        assert breaker.allow_probe()
        assert breaker.record_success() == BREAKER_CLOSED
        assert not breaker.is_open
        assert breaker.open_count == 0

    def test_transitions_and_state_are_published_as_metrics(self):
        clock = FakeClock()
        with use_registry() as registry:
            breaker = CircuitBreaker(
                "worker:0", failure_threshold=1, backoff=FAST, clock=clock
            )
            assert registry.gauge_value("dsr_breaker_state", target="worker:0") == 0.0
            breaker.record_failure()
            assert registry.gauge_value("dsr_breaker_state", target="worker:0") == 2.0
            assert (
                registry.counter_value(
                    "dsr_breaker_transitions_total", target="worker:0", to="open"
                )
                == 1
            )
            clock.advance(1.0)
            breaker.allow_probe()
            assert registry.gauge_value("dsr_breaker_state", target="worker:0") == 1.0
            breaker.record_success()
            assert registry.gauge_value("dsr_breaker_state", target="worker:0") == 0.0

    def test_threshold_must_be_positive(self):
        with pytest.raises(ValueError):
            CircuitBreaker("t", failure_threshold=0)


class TestHealthSupervisor:
    def _supervisor(self, clock, **kwargs):
        kwargs.setdefault("failure_threshold", 2)
        kwargs.setdefault("backoff", FAST)
        return HealthSupervisor(probe_interval_seconds=60.0, clock=clock, **kwargs)

    def test_probe_now_drives_eject_and_admit_callbacks(self):
        clock = FakeClock()
        supervisor = self._supervisor(clock)
        health = {"value": False}
        events = []
        supervisor.add_target(
            "replica:0",
            probe=lambda: health["value"],
            on_eject=lambda: events.append("eject"),
            on_admit=lambda: events.append("admit"),
        )
        assert supervisor.probe_now() == {"replica:0": False}
        supervisor.probe_now()
        # Threshold reached: breaker open, exactly one eject callback.
        assert events == ["eject"]
        # Still open, inside backoff: target not touched, stays ejected.
        assert supervisor.probe_now() == {"replica:0": False}
        assert events == ["eject"]
        # Recovery: advance past the window, probe goes healthy → admit.
        health["value"] = True
        clock.advance(FAST.delay(1))
        assert supervisor.probe_now() == {"replica:0": True}
        assert events == ["eject", "admit"]
        assert supervisor.is_healthy("replica:0")

    def test_probe_exceptions_count_as_failures(self):
        clock = FakeClock()
        supervisor = self._supervisor(clock, failure_threshold=1)

        def explode():
            raise RuntimeError("probe blew up")

        supervisor.add_target("replica:1", probe=explode)
        assert supervisor.probe_now() == {"replica:1": False}
        assert supervisor.breaker("replica:1").state == BREAKER_OPEN

    def test_half_open_probe_failure_keeps_target_ejected(self):
        clock = FakeClock()
        supervisor = self._supervisor(clock, failure_threshold=1)
        events = []
        supervisor.add_target(
            "replica:2",
            probe=lambda: False,
            on_eject=lambda: events.append("eject"),
            on_admit=lambda: events.append("admit"),
        )
        supervisor.probe_now()
        clock.advance(FAST.delay(1))
        supervisor.probe_now()  # half-open probe fails → reopen
        assert events == ["eject"]
        assert supervisor.breaker("replica:2").open_count == 2

    def test_inline_reports_open_a_breaker_between_probe_rounds(self):
        clock = FakeClock()
        supervisor = self._supervisor(clock)
        ejected = []
        supervisor.add_target(
            "worker:0", probe=lambda: True, on_eject=lambda: ejected.append(True)
        )
        supervisor.report_failure("worker:0")
        supervisor.report_failure("worker:0")
        assert ejected == [True]
        assert not supervisor.is_healthy("worker:0")
        supervisor.report_success("worker:0")
        assert supervisor.is_healthy("worker:0")
        # Unknown targets are ignored (callers need no registration check).
        supervisor.report_failure("worker:99")
        assert supervisor.is_healthy("worker:99")

    def test_duplicate_target_rejected(self):
        supervisor = self._supervisor(FakeClock())
        supervisor.add_target("x", probe=lambda: True)
        with pytest.raises(ValueError, match="already supervised"):
            supervisor.add_target("x", probe=lambda: True)

    def test_probe_outcomes_counted(self):
        clock = FakeClock()
        with use_registry() as registry:
            supervisor = self._supervisor(clock)
            flag = {"value": True}
            supervisor.add_target("w", probe=lambda: flag["value"])
            supervisor.probe_now()
            flag["value"] = False
            supervisor.probe_now()
            assert (
                registry.counter_value(
                    "dsr_health_probes_total", target="w", outcome="ok"
                )
                == 1
            )
            assert (
                registry.counter_value(
                    "dsr_health_probes_total", target="w", outcome="fail"
                )
                == 1
            )

    def test_stats_shape(self):
        clock = FakeClock()
        supervisor = self._supervisor(clock, failure_threshold=1)
        supervisor.add_target("replica:0", probe=lambda: False)
        supervisor.probe_now()
        stats = supervisor.stats()
        assert stats["running"] is False
        row = stats["targets"]["replica:0"]
        assert row["state"] == BREAKER_OPEN
        assert row["ejected"] is True
        assert row["opens"] == 1
        assert row["next_probe_seconds"] == pytest.approx(1.0)

    def test_background_loop_start_stop(self):
        supervisor = HealthSupervisor(probe_interval_seconds=0.02)
        hits = []
        supervisor.add_target("t", probe=lambda: hits.append(1) or True)
        supervisor.start()
        assert supervisor.running
        deadline = 5.0
        import time as _time

        start = _time.monotonic()
        while not hits and _time.monotonic() - start < deadline:
            _time.sleep(0.01)
        supervisor.stop()
        assert hits
        assert not supervisor.running

    def test_interval_must_be_positive(self):
        with pytest.raises(ValueError):
            HealthSupervisor(probe_interval_seconds=0)
