"""End-to-end deadline tests: query field, protocol gating, enforcement.

Enforcement points exercised here: admission/queue shedding in the service,
the between-batches checkpoint, and the TCP executor's remaining-budget
socket timeout (a wedged worker host yields a typed error, not a hang).
"""

import os
import time

import pytest

from repro.api import DSRConfig, QueryError, ReachQuery
from repro.cluster.cluster import SimulatedCluster
from repro.cluster.executors import register_shard_loader, register_shard_task
from repro.core.engine import DSREngine
from repro.graph import generators
from repro.obs import use_registry
from repro.resilience import (
    Deadline,
    DeadlineExceededError,
    check_deadline,
    current_deadline,
    deadline_scope,
)
from repro.service.protocol import QueryRequest, decode, dumps, encode, loads
from repro.service.server import DSRService, ErrorResponse


@register_shard_loader("restest.load")
def _load(blob):
    return dict(blob)


@register_shard_task("restest.sleep")
def _sleep(shard, payload):
    time.sleep(payload)
    return "done"


class TestDeadlineObject:
    def test_budget_must_be_positive(self):
        with pytest.raises(ValueError):
            Deadline(0)
        with pytest.raises(ValueError):
            Deadline(-5)

    def test_from_query_none_without_budget(self):
        assert Deadline.from_query(ReachQuery((1,), (2,))) is None
        deadline = Deadline.from_query(ReachQuery((1,), (2,), deadline_ms=500))
        assert deadline is not None
        assert deadline.deadline_ms == 500.0

    def test_expiry_and_remaining(self):
        fresh = Deadline(60_000)
        assert not fresh.expired
        assert fresh.remaining_seconds() > 50
        stale = Deadline(10, started_at=time.monotonic() - 1.0)
        assert stale.expired
        assert stale.remaining_seconds() < 0

    def test_exceeded_carries_stage_and_counts(self):
        stale = Deadline(10, started_at=time.monotonic() - 1.0)
        with use_registry() as registry:
            error = stale.exceeded("rpc")
        assert isinstance(error, DeadlineExceededError)
        assert error.stage == "rpc"
        assert error.deadline_ms == 10.0
        assert error.elapsed_ms > 10.0
        assert (
            registry.counter_value("dsr_deadline_exceeded_total", stage="rpc") == 1
        )

    def test_check_raises_only_when_expired(self):
        Deadline(60_000).check("batch")
        with pytest.raises(DeadlineExceededError):
            Deadline(10, started_at=time.monotonic() - 1.0).check("batch")


class TestScope:
    def test_scope_visibility_and_restore(self):
        assert current_deadline() is None
        deadline = Deadline(60_000)
        with deadline_scope(deadline):
            assert current_deadline() is deadline
        assert current_deadline() is None

    def test_none_shadows_an_outer_scope(self):
        outer = Deadline(10, started_at=time.monotonic() - 1.0)
        with deadline_scope(outer):
            with deadline_scope(None):
                assert current_deadline() is None
                check_deadline("batch")  # no-op despite expired outer
            assert current_deadline() is outer

    def test_check_deadline_is_noop_without_scope(self):
        check_deadline("anywhere")

    def test_check_deadline_raises_in_expired_scope(self):
        with deadline_scope(Deadline(10, started_at=time.monotonic() - 1.0)):
            with pytest.raises(DeadlineExceededError) as info:
                check_deadline("batch")
        assert info.value.stage == "batch"


class TestQueryField:
    def test_validation(self):
        assert ReachQuery((1,), (2,)).deadline_ms is None
        assert ReachQuery((1,), (2,), deadline_ms=250).deadline_ms == 250
        for bad in (0, -10, True, "fast"):
            with pytest.raises(QueryError, match="deadline_ms"):
                ReachQuery((1,), (2,), deadline_ms=bad)

    def test_dict_round_trip(self):
        query = ReachQuery((1, 2), (3,), deadline_ms=125.5)
        clone = ReachQuery.from_dict(query.to_dict())
        assert clone.deadline_ms == 125.5


class TestProtocolGating:
    def test_v6_carries_deadline_v5_strips_it(self):
        request = QueryRequest((1, 2), (9,), deadline_ms=250.0)
        assert encode(request, version=6)["deadline_ms"] == 250.0
        assert "deadline_ms" not in encode(request, version=5)

    def test_wire_round_trip(self):
        request = QueryRequest((1,), (2,), deadline_ms=75.0)
        assert loads(dumps(request)).deadline_ms == 75.0
        # A v5 frame decodes to a query without a budget.
        assert decode(encode(request, version=5)).deadline_ms is None


# Default serial, but honour REPRO_TEST_EXECUTORS (first entry) so the CI
# chaos job re-runs service enforcement against real forked workers.
SERVICE_EXECUTOR = (
    os.environ.get("REPRO_TEST_EXECUTORS", "serial").split(",")[0].strip()
)


@pytest.fixture(scope="module")
def engine():
    graph = generators.social_graph(80, avg_degree=3, seed=3)
    engine = DSREngine.from_config(
        graph,
        DSRConfig(
            num_partitions=2,
            local_index="msbfs",
            seed=2,
            executor=SERVICE_EXECUTOR,
        ),
    )
    engine.build_index()
    yield engine
    engine.close()


class TestServiceEnforcement:
    def test_expired_budget_is_shed_with_a_typed_error(self, engine):
        service = DSRService(engine, num_workers=1)
        try:
            vertices = sorted(engine.graph.vertices())
            # A 1µs budget is spent before any worker can dequeue: the
            # request must come back as the typed error, never hang, and
            # never reach the engine as a half-run query.
            response = service.submit(
                ReachQuery(
                    (vertices[0],), (vertices[-1],), deadline_ms=0.001
                )
            ).result(timeout=10.0)
            assert isinstance(response, ErrorResponse)
            assert response.error == "DeadlineExceededError"
        finally:
            service.close()

    def test_admission_check_on_the_direct_path(self, engine):
        service = DSRService(engine, num_workers=1)
        try:
            vertices = sorted(engine.graph.vertices())
            expired = Deadline(5, started_at=time.monotonic() - 1.0)
            with use_registry() as registry:
                response = service.handle(
                    ReachQuery((vertices[0],), (vertices[-1],), deadline_ms=5),
                    deadline=expired,
                )
            assert isinstance(response, ErrorResponse)
            assert response.error == "DeadlineExceededError"
            assert (
                registry.counter_value(
                    "dsr_deadline_exceeded_total", stage="admission"
                )
                == 1
            )
        finally:
            service.close()

    def test_batch_checkpoint_stops_a_multi_batch_plan(self, engine):
        service = DSRService(engine, num_workers=1, max_batch_pairs=4)
        try:
            vertices = sorted(engine.graph.vertices())
            plan = service.planner.plan(
                ReachQuery(tuple(vertices[:8]), tuple(vertices[-8:]))
            )
            assert plan.num_batches > 1
            with deadline_scope(Deadline(10, started_at=time.monotonic() - 1.0)):
                with pytest.raises(DeadlineExceededError) as info:
                    service._run_plan_batches(plan)
            assert info.value.stage == "batch"
        finally:
            service.close()

    def test_deadline_free_traffic_is_untouched(self, engine):
        service = DSRService(engine, num_workers=1)
        try:
            vertices = sorted(engine.graph.vertices())
            response = service.submit(
                ReachQuery(tuple(vertices[:4]), tuple(vertices[-4:]))
            ).result(timeout=30.0)
            assert not isinstance(response, ErrorResponse)
        finally:
            service.close()


class TestTcpSocketTimeout:
    def test_wedged_host_yields_typed_error_within_budget(self):
        cluster = SimulatedCluster(1, executor="tcp")
        try:
            cluster.hydrate_shards(0, {0: {"rank": 0}}, "restest.load")
            started = time.monotonic()
            with deadline_scope(Deadline(150)):
                with pytest.raises(DeadlineExceededError) as info:
                    # The worker sleeps 1.5s against a 150ms budget: the
                    # remaining budget became the socket timeout.
                    cluster.run_shard_phase(
                        "sleep", "restest.sleep", {0: 1.5}, epoch=0
                    )
            elapsed = time.monotonic() - started
            assert info.value.stage == "rpc"
            assert elapsed < 1.0  # did not wait out the wedged call
            # The executor dropped the poisoned socket; deadline-free
            # traffic afterwards reconnects and works.
            assert cluster.run_shard_phase(
                "sleep", "restest.sleep", {0: 0.0}, epoch=0
            ) == {0: "done"}
        finally:
            cluster.close()
