"""Property-based tests (hypothesis) for the graph kernel invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.graph.scc import condense, strongly_connected_components
from repro.graph.traversal import bfs_reachable_set, is_reachable, topological_order

# Strategy: a small random edge list over vertex ids 0..14.
edge_lists = st.lists(
    st.tuples(st.integers(0, 14), st.integers(0, 14)),
    min_size=0,
    max_size=60,
)


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_edge_and_vertex_counts_consistent(edges):
    graph = DiGraph.from_edges(edges)
    assert graph.num_edges == len(set(edges))
    assert graph.num_edges == sum(1 for _ in graph.edges())
    assert graph.num_vertices == len(set(graph.vertices()))


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_in_degrees_equal_out_degrees_totals(edges):
    graph = DiGraph.from_edges(edges)
    total_out = sum(graph.out_degree(v) for v in graph.vertices())
    total_in = sum(graph.in_degree(v) for v in graph.vertices())
    assert total_out == total_in == graph.num_edges


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_reverse_is_involution(edges):
    graph = DiGraph.from_edges(edges)
    double_reverse = graph.reverse().reverse()
    assert set(double_reverse.edges()) == set(graph.edges())
    assert set(double_reverse.vertices()) == set(graph.vertices())


@given(edge_lists)
@settings(max_examples=60, deadline=None)
def test_reachability_symmetric_under_reversal(edges):
    graph = DiGraph.from_edges(edges, vertices=range(15))
    reverse = graph.reverse()
    for u in (0, 7, 14):
        for v in (3, 9):
            assert is_reachable(graph, u, v) == is_reachable(reverse, v, u)


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_scc_partition_the_vertex_set(edges):
    graph = DiGraph.from_edges(edges, vertices=range(15))
    components = strongly_connected_components(graph)
    flattened = [vertex for component in components for vertex in component]
    assert sorted(flattened) == sorted(graph.vertices())


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_condensation_is_acyclic_and_preserves_reachability(edges):
    graph = DiGraph.from_edges(edges, vertices=range(15))
    dag, mapping = condense(graph)
    topological_order(dag)  # raises on a cycle
    for u in (0, 5, 14):
        for v in (2, 11):
            assert is_reachable(graph, u, v) == is_reachable(dag, mapping[u], mapping[v])


@given(edge_lists)
@settings(max_examples=50, deadline=None)
def test_reachable_set_is_transitively_closed(edges):
    graph = DiGraph.from_edges(edges, vertices=range(15))
    reached = bfs_reachable_set(graph, 0)
    for vertex in reached:
        for succ in graph.successors(vertex):
            assert succ in reached
