"""Tests for BFS/DFS traversal primitives."""

import pytest

from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.graph.traversal import (
    bfs_reachable_set,
    dfs_reachable_set,
    is_reachable,
    multi_source_reachability,
    reachable_pairs,
    topological_order,
)


@pytest.fixture
def diamond():
    #   0 -> 1 -> 3
    #   0 -> 2 -> 3 -> 4
    return DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4)])


class TestReachableSets:
    def test_bfs_includes_source(self, diamond):
        assert 0 in bfs_reachable_set(diamond, 0)

    def test_bfs_full_reachability(self, diamond):
        assert bfs_reachable_set(diamond, 0) == {0, 1, 2, 3, 4}
        assert bfs_reachable_set(diamond, 3) == {3, 4}

    def test_dfs_matches_bfs(self):
        graph = generators.random_digraph(60, 200, seed=9)
        for source in list(graph.vertices())[:15]:
            assert bfs_reachable_set(graph, source) == dfs_reachable_set(graph, source)

    def test_early_termination_covers_targets(self, diamond):
        visited = bfs_reachable_set(diamond, 0, targets={4})
        assert 4 in visited

    def test_is_reachable(self, diamond):
        assert is_reachable(diamond, 0, 4)
        assert not is_reachable(diamond, 4, 0)
        assert is_reachable(diamond, 2, 2)


class TestMultiSource:
    def test_multi_source_matches_single(self, diamond):
        result = multi_source_reachability(diamond, [0, 3], [1, 4])
        assert result[0] == {1, 4}
        assert result[3] == {4}

    def test_source_is_own_target(self, diamond):
        result = multi_source_reachability(diamond, [2], [2, 4])
        assert result[2] == {2, 4}

    def test_missing_source_gives_empty(self, diamond):
        result = multi_source_reachability(diamond, [99], [0])
        assert result[99] == set()

    def test_reachable_pairs(self, diamond):
        pairs = reachable_pairs(diamond, [0, 1], [3, 4])
        assert pairs == {(0, 3), (0, 4), (1, 3), (1, 4)}


class TestTopologicalOrder:
    def test_order_respects_edges(self):
        graph = generators.dag(40, 120, seed=2)
        order = topological_order(graph)
        position = {vertex: index for index, vertex in enumerate(order)}
        for u, v in graph.edges():
            assert position[u] < position[v]

    def test_cycle_raises(self):
        with pytest.raises(ValueError):
            topological_order(generators.cycle_graph(3))
