"""Tests for edge-list / triple IO."""


import pytest

from repro.graph import generators
from repro.graph.io import read_edge_list, read_triples, write_edge_list, write_triples


class TestEdgeListIO:
    def test_roundtrip(self, tmp_path):
        graph = generators.random_digraph(50, 120, seed=5)
        path = tmp_path / "graph.txt"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert set(loaded.edges()) == set(graph.edges())

    def test_gzip_roundtrip(self, tmp_path):
        graph = generators.random_digraph(30, 60, seed=6)
        path = tmp_path / "graph.txt.gz"
        write_edge_list(graph, path)
        loaded = read_edge_list(path)
        assert set(loaded.edges()) == set(graph.edges())

    def test_comments_and_blank_lines_skipped(self, tmp_path):
        path = tmp_path / "graph.txt"
        path.write_text("# comment\n\n0\t1\n1\t2\n")
        graph = read_edge_list(path)
        assert set(graph.edges()) == {(0, 1), (1, 2)}

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "bad.txt"
        path.write_text("0\n")
        with pytest.raises(ValueError):
            read_edge_list(path)


class TestTripleIO:
    def test_roundtrip(self, tmp_path):
        triples = [("s1", "p", "o1"), ("s2", "p", "o2")]
        path = tmp_path / "triples.tsv"
        write_triples(triples, path)
        assert read_triples(path) == triples

    def test_malformed_triple_raises(self, tmp_path):
        path = tmp_path / "bad.tsv"
        path.write_text("only\ttwo\n")
        with pytest.raises(ValueError):
            read_triples(path)
