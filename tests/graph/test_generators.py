"""Tests for the synthetic graph generators."""

import pytest

from repro.graph import generators
from repro.graph.traversal import is_reachable


class TestDeterminism:
    @pytest.mark.parametrize(
        "factory",
        [
            lambda seed: generators.random_digraph(100, 300, seed=seed),
            lambda seed: generators.dag(100, 250, seed=seed),
            lambda seed: generators.social_graph(150, avg_degree=6, seed=seed),
            lambda seed: generators.web_graph(150, avg_degree=6, seed=seed),
            lambda seed: generators.copurchase_graph(120, avg_degree=5, seed=seed),
            lambda seed: generators.hierarchy_graph(150, seed=seed),
            lambda seed: generators.community_graph(4, 30, seed=seed),
        ],
    )
    def test_same_seed_same_graph(self, factory):
        first = factory(7)
        second = factory(7)
        assert set(first.edges()) == set(second.edges())

    def test_different_seed_different_graph(self):
        a = generators.random_digraph(100, 300, seed=1)
        b = generators.random_digraph(100, 300, seed=2)
        assert set(a.edges()) != set(b.edges())


class TestStructuralProperties:
    def test_dag_has_no_cycles(self):
        graph = generators.dag(80, 200, seed=3)
        for u, v in graph.edges():
            assert u < v

    def test_social_graph_density(self):
        graph = generators.social_graph(300, avg_degree=8, seed=1)
        assert graph.num_vertices == 300
        assert graph.num_edges >= 300  # at least edges_per_vertex each

    def test_hierarchy_graph_is_sparse(self):
        graph = generators.hierarchy_graph(500, seed=1)
        assert graph.num_edges < 3 * graph.num_vertices

    def test_community_graph_dimensions(self):
        graph = generators.community_graph(5, 20, seed=1)
        assert graph.num_vertices == 100

    def test_path_and_cycle(self):
        path = generators.path_graph(5)
        cycle = generators.cycle_graph(5)
        assert path.num_edges == 4
        assert cycle.num_edges == 5
        assert is_reachable(cycle, 4, 0)
        assert not is_reachable(path, 4, 0)

    def test_layered_graph_edges_go_downward(self):
        graph = generators.layered_graph([5, 5, 5], inter_layer_prob=0.5, seed=2)
        for u, v in graph.edges():
            assert v > u


class TestPaperExample:
    """The Figure-1 running example must satisfy the paper's statements."""

    @pytest.fixture
    def example(self):
        graph, assignment = generators.paper_example_graph()
        labels = {graph.label_of(v): v for v in graph.vertices()}
        return graph, assignment, labels

    def test_vertex_and_partition_counts(self, example):
        graph, assignment, _ = example
        assert graph.num_vertices == 19
        assert set(assignment.values()) == {0, 1, 2}

    def test_example2_boolean_formulas_partition1(self, example):
        graph, assignment, labels = example
        g1 = graph.induced_subgraph(
            [v for v, pid in assignment.items() if pid == 0]
        )
        # d = b ∨ e and f = b ∨ e (local reachability inside G1).
        for source in ("d", "f", "a"):
            assert is_reachable(g1, labels[source], labels["b"])
            assert is_reachable(g1, labels[source], labels["e"])

    def test_example2_boolean_formulas_partition2(self, example):
        graph, assignment, labels = example
        g2 = graph.induced_subgraph(
            [v for v, pid in assignment.items() if pid == 1]
        )
        assert is_reachable(g2, labels["c"], labels["i"])
        assert is_reachable(g2, labels["g"], labels["i"])
        assert is_reachable(g2, labels["g"], labels["l"])
        assert is_reachable(g2, labels["h"], labels["i"])
        assert not is_reachable(g2, labels["c"], labels["l"])
        assert not is_reachable(g2, labels["h"], labels["l"])

    def test_example7_b_to_f_only_globally(self, example):
        graph, assignment, labels = example
        g1 = graph.induced_subgraph(
            [v for v, pid in assignment.items() if pid == 0]
        )
        assert not is_reachable(g1, labels["b"], labels["f"])
        assert is_reachable(graph, labels["b"], labels["f"])

    def test_example8_a_reaches_q(self, example):
        graph, _, labels = example
        assert is_reachable(graph, labels["a"], labels["q"])
