"""Tests for the CSR snapshot: structure, caching and dirty-flag invalidation."""

import pytest

from repro.graph import generators
from repro.graph.csr import CSRGraph
from repro.graph.digraph import DiGraph
from repro.reachability.msbfs import MultiSourceBFS


def assert_matches_digraph(csr: CSRGraph, graph: DiGraph) -> None:
    """Every adjacency fact of the snapshot must mirror the source graph."""
    assert csr.num_vertices == graph.num_vertices
    assert csr.num_edges == graph.num_edges
    assert set(csr.ids) == set(graph.vertices())
    for vertex in graph.vertices():
        assert set(csr.successors(vertex)) == set(graph.successors(vertex))
        assert set(csr.predecessors(vertex)) == set(graph.predecessors(vertex))
        index = csr.index_of(vertex)
        assert csr.vertex_at(index) == vertex
        assert csr.out_degree(index) == graph.out_degree(vertex)
        assert csr.in_degree(index) == graph.in_degree(vertex)


class TestStructure:
    def test_mirrors_random_graph(self):
        graph = generators.random_digraph(80, 300, seed=3)
        assert_matches_digraph(graph.csr(), graph)

    def test_mirrors_graph_with_gaps_in_ids(self):
        graph = DiGraph.from_edges([(5, 90), (90, 7), (7, 5), (200, 90)])
        assert_matches_digraph(graph.csr(), graph)

    def test_empty_graph(self):
        csr = DiGraph().csr()
        assert csr.num_vertices == 0
        assert csr.num_edges == 0
        assert csr.degree_stats()["avg_degree"] == 0.0

    def test_offsets_are_monotone_and_runs_sorted(self):
        graph = generators.web_graph(120, avg_degree=6, seed=1)
        csr = graph.csr()
        for i in range(csr.num_vertices):
            run = list(csr.out_neighbors(i))
            assert run == sorted(run)
            assert csr.fwd_offsets[i] <= csr.fwd_offsets[i + 1]
        assert csr.fwd_offsets[csr.num_vertices] == csr.num_edges

    def test_deterministic_across_insertion_order(self):
        edges = [(0, 1), (1, 2), (2, 0), (2, 3)]
        a = DiGraph.from_edges(edges)
        b = DiGraph.from_edges(list(reversed(edges)))
        assert a.csr().ids == b.csr().ids
        assert a.csr().fwd_targets == b.csr().fwd_targets
        assert a.csr().rev_targets == b.csr().rev_targets

    def test_degree_stats(self):
        graph = DiGraph.from_edges([(0, 1), (0, 2), (0, 3), (1, 3)])
        stats = graph.csr().degree_stats()
        assert stats["num_vertices"] == 4
        assert stats["num_edges"] == 4
        assert stats["avg_degree"] == 1.0
        assert stats["max_out_degree"] == 3
        assert stats["max_in_degree"] == 2

    def test_reverse_arrays_are_lazy(self):
        # Most consumers only walk forward; the reverse buffers must not be
        # paid for until something actually asks for them.
        graph = generators.random_digraph(40, 120, seed=6)
        csr = graph.csr()
        assert csr._rev_offsets is None
        forward_only = csr.nbytes()
        vertex = next(iter(graph.vertices()))
        assert set(csr.predecessors(vertex)) == set(graph.predecessors(vertex))
        assert csr._rev_offsets is not None
        assert csr.nbytes() > forward_only

    def test_missing_vertex_lookup(self):
        graph = DiGraph.from_edges([(0, 1)])
        csr = graph.csr()
        assert not csr.has_vertex(99)
        assert csr.successors(99) == ()
        with pytest.raises(KeyError):
            csr.index_of(99)


class TestCachingAndInvalidation:
    def test_snapshot_is_cached_until_mutation(self):
        graph = generators.random_digraph(30, 60, seed=1)
        assert graph.csr() is graph.csr()

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda g: g.add_edge(0, 17),
            lambda g: g.remove_edge(*next(iter(g.edges()))),
            lambda g: g.remove_vertex(3),
            lambda g: g.add_vertex(),
        ],
        ids=["add_edge", "remove_edge", "remove_vertex", "add_vertex"],
    )
    def test_every_mutation_invalidates(self, mutate):
        graph = generators.random_digraph(30, 60, seed=2)
        before = graph.csr()
        mutate(graph)
        after = graph.csr()
        assert after is not before
        assert_matches_digraph(after, graph)

    def test_noop_mutations_keep_snapshot(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2)])
        snapshot = graph.csr()
        assert not graph.add_edge(0, 1)  # already present
        assert not graph.remove_edge(2, 0)  # never existed
        graph.add_vertex(1)  # already present
        assert graph.csr() is snapshot

    def test_remove_edge_regression_stale_snapshot_never_served(self):
        # The satellite-task regression: after remove_edge the old snapshot
        # (which still contains the edge) must not answer queries.
        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        index = MultiSourceBFS(graph)
        assert index.reachable(0, 3)
        graph.remove_edge(1, 2)
        assert not index.reachable(0, 3)
        assert set(graph.csr().successors(1)) == set()

    def test_remove_vertex_regression_stale_snapshot_never_served(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        index = MultiSourceBFS(graph)
        assert index.reachable(0, 3)
        graph.remove_vertex(2)
        assert not index.reachable(0, 3)
        assert not graph.csr().has_vertex(2)

    def test_insert_then_query_sees_new_edge(self):
        graph = DiGraph.from_edges([(0, 1), (2, 3)])
        index = MultiSourceBFS(graph)
        assert not index.reachable(0, 3)
        graph.add_edge(1, 2)
        assert index.reachable(0, 3)


class TestCompactSerialisation:
    """to_bytes()/from_bytes() — the shard hydration wire format."""

    def test_round_trip_mirrors_graph(self):
        graph = generators.random_digraph(60, 240, seed=9)
        restored = CSRGraph.from_bytes(graph.csr().to_bytes())
        assert_matches_digraph(restored, graph)

    def test_round_trip_is_byte_identical(self):
        graph = generators.random_digraph(40, 160, seed=4)
        payload = graph.csr().to_bytes()
        assert CSRGraph.from_bytes(payload).to_bytes() == payload

    def test_round_trip_with_gaps_in_ids(self):
        graph = DiGraph.from_edges([(10, 700), (700, 31), (31, 10), (5, 700)])
        restored = CSRGraph.from_bytes(graph.csr().to_bytes())
        assert_matches_digraph(restored, graph)
        assert restored.successors(10) == (700,)

    def test_empty_graph_round_trips(self):
        restored = CSRGraph.from_bytes(DiGraph().csr().to_bytes())
        assert restored.num_vertices == 0
        assert restored.num_edges == 0

    def test_reverse_arrays_are_rederived_not_shipped(self):
        graph = DiGraph.from_edges([(0, 1), (2, 1), (1, 3)])
        csr = graph.csr()
        csr.rev_offsets  # materialise the reverse half on the original
        payload = csr.to_bytes()
        restored = CSRGraph.from_bytes(payload)
        # The payload never contains the reverse arrays: its size is exactly
        # header + ids + forward offsets + forward targets, whether or not
        # the sender had materialised its reverse half.
        n, m = csr.num_vertices, csr.num_edges
        assert len(payload) == 20 + 8 * (n + (n + 1) + m)
        # ...yet the receiver re-derives identical in-neighbour runs.
        assert set(restored.predecessors(1)) == {0, 2}

    def test_bad_magic_rejected(self):
        with pytest.raises(ValueError, match="magic"):
            CSRGraph.from_bytes(b"NOPE" + bytes(16))

    def test_truncated_payload_rejected(self):
        payload = generators.random_digraph(10, 30, seed=1).csr().to_bytes()
        with pytest.raises(ValueError):
            CSRGraph.from_bytes(payload[:-8])
        with pytest.raises(ValueError):
            CSRGraph.from_bytes(payload[:10])
