"""Tests for SCC computation and condensation."""


from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.graph.scc import component_members, condense, strongly_connected_components
from repro.graph.traversal import is_reachable, topological_order


def scc_sets(graph):
    return {frozenset(component) for component in strongly_connected_components(graph)}


class TestStronglyConnectedComponents:
    def test_single_cycle_is_one_component(self):
        graph = generators.cycle_graph(5)
        assert scc_sets(graph) == {frozenset(range(5))}

    def test_path_graph_all_singletons(self):
        graph = generators.path_graph(6)
        assert scc_sets(graph) == {frozenset([v]) for v in range(6)}

    def test_two_cycles_bridged(self):
        graph = DiGraph.from_edges(
            [(0, 1), (1, 0), (2, 3), (3, 2), (1, 2)]
        )
        assert scc_sets(graph) == {frozenset({0, 1}), frozenset({2, 3})}

    def test_isolated_vertices(self):
        graph = DiGraph()
        graph.add_vertex(0)
        graph.add_vertex(1)
        assert scc_sets(graph) == {frozenset({0}), frozenset({1})}

    def test_empty_graph(self):
        assert strongly_connected_components(DiGraph()) == []

    def test_deep_chain_no_recursion_error(self):
        # 20k-vertex chain: a recursive Tarjan would overflow Python's stack.
        graph = generators.path_graph(20_000)
        components = strongly_connected_components(graph)
        assert len(components) == 20_000

    def test_scc_members_mutually_reachable(self):
        graph = generators.random_digraph(60, 200, seed=4)
        for component in strongly_connected_components(graph):
            for u in component:
                for v in component:
                    assert is_reachable(graph, u, v)


class TestCondense:
    def test_condensation_is_dag(self):
        graph = generators.random_digraph(80, 300, seed=1)
        dag, _ = condense(graph)
        # topological_order raises on cycles.
        order = topological_order(dag)
        assert len(order) == dag.num_vertices

    def test_condensation_preserves_reachability(self):
        graph = generators.random_digraph(50, 160, seed=2)
        dag, mapping = condense(graph)
        for u in list(graph.vertices())[:10]:
            for v in list(graph.vertices())[:10]:
                assert is_reachable(graph, u, v) == is_reachable(
                    dag, mapping[u], mapping[v]
                )

    def test_cycle_condenses_to_single_vertex(self):
        dag, mapping = condense(generators.cycle_graph(7))
        assert dag.num_vertices == 1
        assert dag.num_edges == 0
        assert len(set(mapping.values())) == 1

    def test_component_members_inverse(self):
        graph = generators.random_digraph(30, 90, seed=3)
        _, mapping = condense(graph)
        members = component_members(mapping)
        for component, vertices in members.items():
            for vertex in vertices:
                assert mapping[vertex] == component
        assert sum(len(v) for v in members.values()) == graph.num_vertices
