"""Unit tests for the DiGraph kernel."""

import pytest

from repro.graph.digraph import DiGraph, GraphError


class TestVertexManagement:
    def test_add_vertex_auto_id(self):
        graph = DiGraph()
        assert graph.add_vertex() == 0
        assert graph.add_vertex() == 1
        assert graph.num_vertices == 2

    def test_add_vertex_explicit_id(self):
        graph = DiGraph()
        assert graph.add_vertex(10) == 10
        # Fresh ids continue above the highest explicit id.
        assert graph.add_vertex() == 11

    def test_add_existing_vertex_is_noop(self):
        graph = DiGraph()
        graph.add_vertex(3)
        graph.add_vertex(3)
        assert graph.num_vertices == 1

    def test_negative_vertex_rejected(self):
        graph = DiGraph()
        with pytest.raises(GraphError):
            graph.add_vertex(-1)

    def test_labels_bijective(self):
        graph = DiGraph()
        a = graph.add_vertex(label="a")
        assert graph.label_of(a) == "a"
        assert graph.vertex_by_label("a") == a
        with pytest.raises(GraphError):
            graph.add_vertex(label="a")

    def test_label_defaults_to_id(self):
        graph = DiGraph()
        v = graph.add_vertex(7)
        assert graph.label_of(v) == 7

    def test_unknown_label_raises(self):
        graph = DiGraph()
        with pytest.raises(GraphError):
            graph.vertex_by_label("missing")

    def test_remove_vertex_removes_incident_edges(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 0)])
        graph.remove_vertex(1)
        assert not graph.has_vertex(1)
        assert graph.num_edges == 1
        assert graph.has_edge(2, 0)

    def test_contains_and_len(self):
        graph = DiGraph.from_edges([(0, 1)])
        assert 0 in graph
        assert 5 not in graph
        assert len(graph) == 2


class TestEdgeManagement:
    def test_add_edge_creates_vertices(self):
        graph = DiGraph()
        assert graph.add_edge(1, 2) is True
        assert graph.has_vertex(1) and graph.has_vertex(2)
        assert graph.num_edges == 1

    def test_duplicate_edge_not_counted(self):
        graph = DiGraph()
        graph.add_edge(0, 1)
        assert graph.add_edge(0, 1) is False
        assert graph.num_edges == 1

    def test_self_loop_allowed(self):
        graph = DiGraph()
        graph.add_edge(4, 4)
        assert graph.has_edge(4, 4)

    def test_remove_edge(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2)])
        assert graph.remove_edge(0, 1) is True
        assert graph.remove_edge(0, 1) is False
        assert graph.num_edges == 1

    def test_successors_and_predecessors(self):
        graph = DiGraph.from_edges([(0, 1), (0, 2), (3, 0)])
        assert graph.successors(0) == {1, 2}
        assert graph.predecessors(0) == {3}
        assert graph.out_degree(0) == 2
        assert graph.in_degree(0) == 1

    def test_missing_vertex_access_raises(self):
        graph = DiGraph()
        with pytest.raises(GraphError):
            graph.successors(99)

    def test_edges_iteration(self):
        edges = {(0, 1), (1, 2), (2, 0)}
        graph = DiGraph.from_edges(edges)
        assert set(graph.edges()) == edges


class TestDerivedGraphs:
    def test_induced_subgraph(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3)])
        sub = graph.induced_subgraph({0, 1, 3})
        assert set(sub.vertices()) == {0, 1, 3}
        assert set(sub.edges()) == {(0, 1), (0, 3)}

    def test_induced_subgraph_preserves_labels(self):
        graph = DiGraph()
        a = graph.add_vertex(label="a")
        b = graph.add_vertex(label="b")
        graph.add_edge(a, b)
        sub = graph.induced_subgraph({a, b})
        assert sub.label_of(a) == "a"
        assert sub.vertex_by_label("b") == b

    def test_reverse(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2)])
        rev = graph.reverse()
        assert set(rev.edges()) == {(1, 0), (2, 1)}

    def test_copy_is_independent(self):
        graph = DiGraph.from_edges([(0, 1)])
        clone = graph.copy()
        clone.add_edge(1, 2)
        assert graph.num_edges == 1
        assert clone.num_edges == 2

    def test_from_edges_with_isolated_vertices(self):
        graph = DiGraph.from_edges([(0, 1)], vertices=[5, 6])
        assert graph.has_vertex(5)
        assert graph.has_vertex(6)
        assert graph.num_vertices == 4
