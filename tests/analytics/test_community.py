"""Tests for Louvain-style community detection."""


from repro.analytics.community import detect_communities
from repro.graph import generators
from repro.graph.digraph import DiGraph


class TestDetectCommunities:
    def test_planted_partitions_recovered(self):
        graph = generators.community_graph(
            num_communities=5, community_size=40, intra_prob=0.15, inter_prob=0.001, seed=2
        )
        detection = detect_communities(graph, seed=1)
        # Louvain is a heuristic: allow a block to be split once, but the
        # planted structure must clearly dominate.
        assert 5 <= detection.num_communities <= 7
        assert detection.modularity > 0.5
        for block in range(5):
            members = list(range(block * 40, (block + 1) * 40))
            labels = [detection.assignment[v] for v in members]
            most_common = max(set(labels), key=labels.count)
            assert labels.count(most_common) >= 0.8 * len(members)

    def test_two_disconnected_cliques(self):
        edges = []
        for block in (0, 1):
            base = block * 5
            for u in range(base, base + 5):
                for v in range(base, base + 5):
                    if u != v:
                        edges.append((u, v))
        graph = DiGraph.from_edges(edges)
        detection = detect_communities(graph, seed=0)
        assert detection.num_communities == 2
        assert detection.assignment[0] != detection.assignment[5]

    def test_assignment_covers_all_vertices(self):
        graph = generators.social_graph(150, avg_degree=5, seed=3)
        detection = detect_communities(graph, seed=2)
        assert set(detection.assignment) == set(graph.vertices())

    def test_community_ids_are_dense(self):
        graph = generators.community_graph(4, 25, seed=4)
        detection = detect_communities(graph, seed=1)
        ids = set(detection.assignment.values())
        assert ids == set(range(len(ids)))

    def test_members_and_sizes_consistent(self):
        graph = generators.community_graph(3, 30, seed=5)
        detection = detect_communities(graph, seed=1)
        total = sum(size for _, size in detection.communities_by_size())
        assert total == graph.num_vertices
        largest_id, largest_size = detection.communities_by_size()[0]
        assert len(detection.members(largest_id)) == largest_size

    def test_empty_graph(self):
        detection = detect_communities(DiGraph(), seed=0)
        assert detection.num_communities == 0
        assert detection.modularity == 0.0

    def test_deterministic_for_seed(self):
        graph = generators.community_graph(4, 30, seed=6)
        first = detect_communities(graph, seed=9)
        second = detect_communities(graph, seed=9)
        assert first.assignment == second.assignment
