"""Tests for the community-connectedness application (Table 7)."""

import pytest

from repro.analytics.connectedness import CommunityConnectedness
from repro.graph import generators
from repro.graph.traversal import reachable_pairs


@pytest.fixture(scope="module")
def analysis():
    graph = generators.community_graph(
        num_communities=6, community_size=40, intra_prob=0.08, inter_prob=0.003, seed=7
    )
    return graph, CommunityConnectedness(graph, num_partitions=3, seed=2)


class TestConnectedness:
    def test_default_analysis_uses_two_largest_communities(self, analysis):
        _, cc = analysis
        report = cc.analyse(representatives=10)
        assert report.community_a != report.community_b
        assert report.num_sources <= 10
        assert report.num_targets <= 10

    def test_pairs_match_ground_truth(self, analysis):
        graph, cc = analysis
        report = cc.analyse(representatives=15, rng_seed=4)
        sources = {s for s, _ in report.pairs} | set()
        # Re-derive the representative sets deterministically and verify.
        import random

        rng = random.Random(4)
        expected_sources = cc.sample_representatives(report.community_a, 15, rng)
        expected_targets = cc.sample_representatives(report.community_b, 15, rng)
        assert report.pairs == reachable_pairs(graph, expected_sources, expected_targets)
        assert report.num_pairs == len(report.pairs)

    def test_specific_communities(self, analysis):
        _, cc = analysis
        sizes = cc.communities.communities_by_size()
        a, b = sizes[0][0], sizes[-1][0]
        report = cc.analyse(community_a=a, community_b=b, representatives=5)
        assert report.community_a == a
        assert report.community_b == b

    def test_sample_capped_by_community_size(self, analysis):
        _, cc = analysis
        community_id, size = cc.communities.communities_by_size()[0]
        sample = cc.sample_representatives(community_id, size + 100)
        assert len(sample) == size

    def test_reuses_prebuilt_engine(self):
        from repro.core.engine import DSREngine

        graph = generators.community_graph(3, 25, seed=8)
        engine = DSREngine(graph, num_partitions=2, seed=1)
        engine.build_index()
        cc = CommunityConnectedness(graph, engine=engine)
        assert cc.engine is engine
        report = cc.analyse(representatives=5)
        assert report.seconds >= 0
