"""Fleet construction, answer parity, update fan-out and config plumbing."""

import random

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.api.config import ConfigError
from repro.fleet import (
    DEFAULT_FLEET_STRATEGIES,
    ReplicaFleet,
    resolve_replica_strategies,
)
from repro.graph import generators
from repro.graph.traversal import reachable_pairs


@pytest.fixture
def graph():
    return generators.social_graph(200, avg_degree=4, seed=9)


def random_queries(graph, count=25, seed=21):
    rng = random.Random(seed)
    verts = sorted(graph.vertices())
    for _ in range(count):
        sources = tuple(rng.sample(verts, rng.choice([1, 2, 16])))
        targets = tuple(rng.sample(verts, rng.choice([1, 4, 16])))
        yield ReachQuery(sources, targets, tenant=rng.choice([None, "a", "b"]))


class TestResolveStrategies:
    def test_none_gives_default_trio(self):
        assert resolve_replica_strategies(None) == DEFAULT_FLEET_STRATEGIES

    def test_int_cycles_the_trio(self):
        assert resolve_replica_strategies(5) == (
            "msbfs", "ferrari", "closure", "msbfs", "ferrari",
        )

    def test_list_is_taken_verbatim(self):
        assert resolve_replica_strategies(["grail", "dfs"]) == ("grail", "dfs")


class TestFleetConfig:
    def test_replicas_implies_fleet(self):
        config = DSRConfig(replicas=3)
        assert config.fleet is True

    def test_int_replicas_validated(self):
        with pytest.raises(ConfigError):
            DSRConfig(replicas=0)
        with pytest.raises(ConfigError):
            DSRConfig(replicas=True)

    def test_strategy_list_validated(self):
        with pytest.raises(ConfigError):
            DSRConfig(replicas=["msbfs", "btree"])
        with pytest.raises(ConfigError):
            DSRConfig(replicas=[])

    def test_fleet_requires_dsr_backend(self):
        with pytest.raises(ConfigError):
            DSRConfig(backend="naive", fleet=True)

    def test_round_trips_through_dict(self):
        config = DSRConfig(replicas=["msbfs", "closure"])
        clone = DSRConfig.from_dict(config.to_dict())
        assert clone.fleet is True
        assert tuple(clone.replicas) == ("msbfs", "closure")

    def test_open_engine_returns_a_fleet(self, graph):
        fleet = open_engine(graph, DSRConfig(num_partitions=3, replicas=2))
        try:
            assert isinstance(fleet, ReplicaFleet)
            assert [r.strategy for r in fleet.replicas] == ["msbfs", "ferrari"]
        finally:
            fleet.close()


class TestAnswerParity:
    def test_fleet_matches_single_engine_and_truth(self, graph):
        single = open_engine(
            graph.copy(), DSRConfig(num_partitions=3, local_index="msbfs", seed=9)
        )
        fleet = ReplicaFleet.from_config(
            graph, DSRConfig(num_partitions=3, replicas=3, seed=9)
        )
        try:
            for query in random_queries(graph):
                expected = reachable_pairs(graph, query.sources, query.targets)
                assert set(fleet.run(query).pairs) == expected
                assert set(single.run(query).pairs) == expected
        finally:
            fleet.close()
            single.close()

    def test_reachable_delegates_to_routing(self, graph):
        fleet = ReplicaFleet.from_config(
            graph, DSRConfig(num_partitions=3, replicas=2, seed=9)
        )
        try:
            verts = sorted(graph.vertices())
            truth = reachable_pairs(graph, (verts[0],), (verts[-1],))
            assert fleet.reachable(verts[0], verts[-1]) == bool(truth)
        finally:
            fleet.close()


class TestUpdateFanOut:
    @pytest.fixture
    def fleet(self, graph):
        fleet = ReplicaFleet.from_config(
            graph, DSRConfig(num_partitions=3, replicas=3, seed=9)
        )
        yield fleet
        fleet.close()

    def test_edge_updates_keep_replicas_aligned(self, fleet, graph):
        verts = sorted(graph.vertices())
        added = next(
            (u, v)
            for u in verts for v in (verts[-1], verts[-2])
            if u != v and not graph.has_edge(u, v)
        )
        fleet.insert_edge(*added)
        removed = next(iter(graph.edges()))
        fleet.delete_edge(*removed)
        for replica in fleet.replicas:
            assert replica.engine.graph.has_edge(*added)
            assert not replica.engine.graph.has_edge(*removed)
            assert replica.engine.graph.num_edges == graph.num_edges
        for query in random_queries(graph, count=10):
            expected = reachable_pairs(graph, query.sources, query.targets)
            assert set(fleet.run(query).pairs) == expected

    def test_vertex_insert_agrees_on_id_and_partition(self, fleet, graph):
        new_vertex = fleet.insert_vertex()
        partitions = {
            replica.engine.partitioning.partition_of(new_vertex)
            for replica in fleet.replicas
        }
        assert len(partitions) == 1
        for replica in fleet.replicas:
            assert replica.engine.graph.has_vertex(new_vertex)

    def test_vertex_delete_fans_out(self, fleet, graph):
        victim = sorted(graph.vertices())[0]
        fleet.delete_vertex(victim)
        for replica in fleet.replicas:
            assert not replica.engine.graph.has_vertex(victim)

    def test_flush_updates_bumps_fleet_version(self, fleet, graph):
        verts = sorted(graph.vertices())
        structural = next(
            (u, v)
            for u in verts for v in (verts[-1], verts[-2], verts[-3])
            if u != v
            and not graph.has_edge(u, v)
            and not reachable_pairs(graph, (u,), (v,))
        )
        before = fleet.epoch
        fleet.insert_edge(*structural)
        assert fleet.has_pending_updates
        fleet.flush_updates()
        # Every replica published an epoch, and each publish bumped the
        # fleet version the service's cache keys on.
        assert fleet.epoch >= before + len(fleet.replicas)


class TestStrategyRebuild:
    def test_sync_rebuild_swaps_strategy_and_preserves_answers(self, graph):
        fleet = ReplicaFleet.from_config(
            graph, DSRConfig(num_partitions=3, replicas=["dfs", "msbfs"], seed=9)
        )
        try:
            queries = list(random_queries(graph, count=8))
            before = [set(fleet.replicas[0].engine.run(q).pairs) for q in queries]
            version = fleet.epoch
            assert fleet.replicas[0].rebuild_to("grail")
            assert fleet.replicas[0].strategy == "grail"
            assert fleet.epoch > version, "a rebuild is an epoch publish"
            after = [set(fleet.replicas[0].engine.run(q).pairs) for q in queries]
            assert before == after
        finally:
            fleet.close()

    def test_rebuild_to_same_strategy_is_a_noop(self, graph):
        fleet = ReplicaFleet.from_config(
            graph, DSRConfig(num_partitions=3, replicas=["msbfs"], seed=9)
        )
        try:
            assert not fleet.replicas[0].rebuild_to("msbfs")
            assert fleet.replicas[0].rebuild_count == 0
        finally:
            fleet.close()

    def test_stats_expose_the_control_plane(self, graph):
        fleet = ReplicaFleet.from_config(
            graph, DSRConfig(num_partitions=3, replicas=2, seed=9)
        )
        try:
            fleet.run(ReachQuery((1,), (2,)))
            stats = fleet.stats()
            assert len(stats["replicas"]) == 2
            assert stats["routes"] == 1
            assert sum(e["routes"] for e in stats["replicas"]) == 1
            assert {"version", "routing_table_size", "workload_classes",
                    "retunes", "last_retune"} <= stats.keys()
        finally:
            fleet.close()
