"""Router fingerprinting, workload histogram and routing determinism.

The routing-determinism tests pin the property the fleet's whole adaptation
story rests on: a *seeded* skewed workload pushed through two independently
built fleets produces byte-identical routing — same per-query replica choice,
same route counts, and (after a retune) the same pinned routing table.
"""

import random

import pytest

from repro.api import DSRConfig, ReachQuery
from repro.fleet import (
    QueryRouter,
    ReplicaFleet,
    WorkloadHistogram,
    fingerprint_query,
    size_bucket,
)
from repro.graph import generators


def make_fleet(seed=5, vertices=150, strategies=("msbfs", "ferrari", "closure")):
    graph = generators.social_graph(vertices, avg_degree=4, seed=seed)
    return ReplicaFleet.from_config(
        graph,
        DSRConfig(num_partitions=3, replicas=list(strategies), seed=seed),
    )


def skewed_workload(graph, count=60, seed=13):
    """A deterministic multi-tenant workload: mostly tiny, some huge."""
    rng = random.Random(seed)
    verts = sorted(graph.vertices())
    queries = []
    for _ in range(count):
        roll = rng.random()
        if roll < 0.7:
            shape, tenant = (1, 1), "pointwise"
        elif roll < 0.9:
            shape, tenant = (64, 16), "analytics"
        else:
            shape, tenant = (8, 8), None
        queries.append(
            ReachQuery(
                tuple(rng.sample(verts, shape[0])),
                tuple(rng.sample(verts, shape[1])),
                tenant=tenant,
            )
        )
    return queries


class TestFingerprint:
    def test_size_buckets_are_log2(self):
        assert [size_bucket(n) for n in (0, 1, 2, 3, 4, 5, 64, 100)] == [
            0, 1, 2, 2, 3, 3, 7, 7,
        ]

    def test_fingerprint_uses_shape_not_ids(self):
        a = ReachQuery((1, 2), (9,), tenant="t")
        b = ReachQuery((40, 80), (3,), tenant="t")
        assert fingerprint_query(a) == fingerprint_query(b)

    def test_fingerprint_fields(self):
        query = ReachQuery((1, 2, 3), (4,), direction="forward", tenant="crm")
        assert fingerprint_query(query) == ("crm", "forward", "auto", 2, 1)

    def test_missing_tenant_normalises_to_empty(self):
        assert fingerprint_query(ReachQuery((1,), (2,)))[0] == ""


class TestWorkloadHistogram:
    def test_records_accumulate_weight(self):
        histogram = WorkloadHistogram()
        fp = ("", "auto", "auto", 1, 1)
        for _ in range(5):
            histogram.record(fp, 1, 1)
        (cls,) = histogram.snapshot()
        assert cls.weight == pytest.approx(5.0)
        assert (cls.num_sources, cls.num_targets) == (1, 1)

    def test_decay_evicts_stale_classes(self):
        histogram = WorkloadHistogram(decay=0.1, decay_every=10)
        stale = ("old", "auto", "auto", 1, 1)
        histogram.record(stale, 1, 1)
        fresh = ("new", "auto", "auto", 3, 3)
        # 2 sweeps at 0.1 decay drive the stale bin under the drop threshold.
        for _ in range(20):
            histogram.record(fresh, 5, 5)
        fingerprints = [cls.fingerprint for cls in histogram.snapshot()]
        assert stale not in fingerprints
        assert fresh in fingerprints

    def test_max_classes_eviction_is_deterministic(self):
        def run():
            histogram = WorkloadHistogram(max_classes=3, decay_every=50)
            rng = random.Random(3)
            for _ in range(200):
                tenant = f"t{rng.randrange(8)}"
                histogram.record((tenant, "auto", "auto", 1, 1), 1, 1)
            return [cls.fingerprint for cls in histogram.snapshot()]

        assert run() == run()
        assert len(run()) <= 3

    def test_snapshot_order_is_sorted(self):
        histogram = WorkloadHistogram()
        histogram.record(("b", "auto", "auto", 1, 1), 1, 1)
        histogram.record(("a", "auto", "auto", 1, 1), 1, 1)
        assert [c.fingerprint[0] for c in histogram.snapshot()] == ["a", "b"]

    def test_rejects_bad_decay(self):
        with pytest.raises(ValueError):
            WorkloadHistogram(decay=0.0)


class TestEstimateQueryCost:
    """The stable public costing contract the router is built on."""

    @pytest.fixture(scope="class")
    def fleet(self):
        fleet = make_fleet()
        yield fleet
        fleet.close()

    def test_empty_query_costs_zero(self, fleet):
        planner = fleet.primary.planner
        assert planner.estimate_query_cost(ReachQuery((), (1,))) == 0.0

    def test_cost_is_finite_deterministic_and_positive(self, fleet):
        planner = fleet.primary.planner
        query = ReachQuery((1, 2, 3), (4, 5))
        first = planner.estimate_query_cost(query)
        assert first > 0.0
        assert first == planner.estimate_query_cost(query)

    def test_local_index_override_changes_price(self, fleet):
        planner = fleet.primary.planner
        tiny = ReachQuery((1,), (2,))
        assert planner.estimate_query_cost(
            tiny, local_index="closure"
        ) < planner.estimate_query_cost(tiny, local_index="dfs")

    def test_shared_frontier_wins_large_root_sets(self, fleet):
        planner = fleet.primary.planner
        verts = sorted(fleet.graph.vertices())
        huge = ReachQuery(tuple(verts[:128]), tuple(verts[:8]))
        assert planner.estimate_query_cost(
            huge, local_index="msbfs"
        ) < planner.estimate_query_cost(huge, local_index="closure")

    def test_unknown_strategy_rejected(self, fleet):
        with pytest.raises(ValueError, match="unknown"):
            fleet.primary.planner.estimate_query_cost(
                ReachQuery((1,), (2,)), local_index="btree"
            )

    def test_router_never_reads_planner_internals(self):
        """The router's only costing dependency is the public method."""
        import inspect

        from repro.fleet import router as router_module

        source = inspect.getsource(router_module)
        assert "_entry_stats" not in source
        assert "_edge_factor" not in source
        assert "estimate_query_cost" in source


class TestRouting:
    def test_routing_is_deterministic_across_runs(self):
        """Same seeded skewed workload, two fresh fleets → same routing."""

        def run():
            fleet = make_fleet()
            try:
                choices = [
                    fleet.route(query).replica.replica_id
                    for query in skewed_workload(fleet.graph)
                ]
                fleet.retune()
                return choices, fleet.router.route_counts(), fleet.router.routing_table()
            finally:
                fleet.close()

        first, second = run(), run()
        assert first[0] == second[0]
        assert first[1] == second[1]
        assert first[2] == second[2]

    def test_heterogeneous_workload_spreads_over_replicas(self):
        fleet = make_fleet()
        try:
            for query in skewed_workload(fleet.graph, count=80):
                fleet.route(query)
            used = [rid for rid, n in fleet.router.route_counts().items() if n]
            assert len(used) >= 2, "a skewed workload should use several replicas"
        finally:
            fleet.close()

    def test_pinned_table_overrides_argmin(self):
        fleet = make_fleet()
        try:
            query = ReachQuery((1,), (2,), tenant="pin")
            baseline = fleet.router.route(query, record=False)
            override = (baseline.replica.replica_id + 1) % len(fleet.replicas)
            fleet.router.install_table({baseline.fingerprint: override})
            decision = fleet.router.route(query, record=False)
            assert decision.table_hit
            assert decision.replica.replica_id == override
            assert decision.best_cost <= decision.routed_cost
            assert decision.cost_gap >= 0.0
        finally:
            fleet.close()

    def test_install_table_drops_invalid_replica_indices(self):
        fleet = make_fleet()
        try:
            fleet.router.install_table({("", "auto", "auto", 1, 1): 99})
            assert fleet.router.routing_table() == {}
        finally:
            fleet.close()

    def test_router_requires_replicas(self):
        with pytest.raises(ValueError):
            QueryRouter([])

    def test_record_false_skips_histogram_and_counts(self):
        fleet = make_fleet()
        try:
            fleet.router.route(ReachQuery((1,), (2,)), record=False)
            assert fleet.router.histogram.num_records == 0
            assert all(n == 0 for n in fleet.router.route_counts().values())
        finally:
            fleet.close()
