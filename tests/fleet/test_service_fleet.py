"""DSRService over a ReplicaFleet: routed reads, fan-out writes, races.

The executor for the service-level tests honours ``REPRO_TEST_EXECUTORS``
(first entry), so the CI ``fleet`` job exercises the process backend.
"""

import os
import random
import threading

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.service import (
    DSRService,
    DSRSocketServer,
    ErrorResponse,
    QueryRequest,
    StatsRequest,
    UpdateRequest,
)
from repro.service.server import DSRClient

FLEET_EXECUTOR = os.environ.get("REPRO_TEST_EXECUTORS", "serial").split(",")[0].strip()


def make_service(graph, epoch_flush="inline", **service_kwargs):
    fleet = open_engine(
        graph,
        DSRConfig(
            num_partitions=3,
            replicas=3,
            seed=9,
            executor=FLEET_EXECUTOR,
            epoch_flush=epoch_flush,
        ),
    )
    return DSRService(fleet, **service_kwargs), fleet


@pytest.fixture
def graph():
    return generators.social_graph(200, avg_degree=4, seed=9)


def sample_queries(graph, count=20, seed=31):
    rng = random.Random(seed)
    verts = sorted(graph.vertices())
    return [
        (
            tuple(rng.sample(verts, rng.choice([1, 2, 32]))),
            tuple(rng.sample(verts, rng.choice([1, 8]))),
        )
        for _ in range(count)
    ]


def structural_edge(graph):
    """An absent edge whose insert genuinely changes reachability."""
    verts = sorted(graph.vertices())
    return next(
        (u, v)
        for u in verts for v in (verts[-1], verts[-2], verts[-3])
        if u != v
        and not graph.has_edge(u, v)
        and not reachable_pairs(graph, (u,), (v,))
    )


class TestRoutedServing:
    def test_concurrent_queries_stay_exact(self, graph):
        service, fleet = make_service(graph, num_workers=4)
        try:
            queries = sample_queries(graph)
            futures = [
                service.submit(QueryRequest(s, t, tenant="load"))
                for s, t in queries
            ]
            for future, (sources, targets) in zip(futures, queries):
                response = future.result()
                assert not isinstance(response, ErrorResponse), response
                assert set(response.pairs) == reachable_pairs(
                    graph, sources, targets
                )
        finally:
            service.close()
            fleet.close()

    def test_stats_expose_the_fleet_section(self, graph):
        service, fleet = make_service(graph, num_workers=2)
        try:
            service.handle(QueryRequest((1,), (2,)))
            stats = service.stats()
            assert "fleet" in stats
            assert len(stats["fleet"]["replicas"]) == 3
            assert stats["fleet"]["routes"] == 1
            assert stats["epoch"] == fleet.epoch
        finally:
            service.close()
            fleet.close()

    def test_structural_update_invalidates_the_cache(self, graph):
        service, fleet = make_service(graph, num_workers=2)
        try:
            u, v = structural_edge(graph)
            first = service.handle(QueryRequest((u,), (v,)))
            assert set(first.pairs) == set()
            update = service.handle(UpdateRequest("insert-edge", u, v))
            assert update.structural_change
            answer = service.handle(QueryRequest((u,), (v,)))
            assert not answer.cached
            assert set(answer.pairs) == {(u, v)}
        finally:
            service.close()
            fleet.close()

    def test_fleet_metrics_reach_the_exposition(self, graph):
        service, fleet = make_service(graph, num_workers=2)
        try:
            service.handle(QueryRequest((1,), (2,)))
            text = service.metrics_text()
            assert "dsr_fleet_route_total" in text
            assert "dsr_fleet_replicas" in text
        finally:
            service.close()
            fleet.close()


class TestRebuildRace:
    def test_queries_survive_a_background_strategy_rebuild(self, graph):
        """In-flight queries never fail or stale while a replica re-specialises."""
        service, fleet = make_service(graph, epoch_flush="background", num_workers=4)
        try:
            queries = sample_queries(graph, count=15)
            expected = {
                (s, t): reachable_pairs(graph, s, t) for s, t in queries
            }
            errors = []

            def hammer():
                for sources, targets in queries:
                    response = service.handle(
                        QueryRequest(sources, targets, use_cache=False)
                    )
                    if isinstance(response, ErrorResponse):
                        errors.append(response)
                        return
                    if set(response.pairs) != expected[(sources, targets)]:
                        errors.append((sources, targets, response.pairs))
                        return

            threads = [threading.Thread(target=hammer) for _ in range(4)]
            for thread in threads:
                thread.start()
            # Re-specialise a replica mid-flight: the rebuild publishes a new
            # epoch under the readers through the epoch-swap machinery.
            assert fleet.replicas[1].rebuild_to("grail", background=True)
            for thread in threads:
                thread.join(timeout=120.0)
            assert not errors, errors[:3]
            assert fleet.replicas[1].wait_for_rebuild(timeout=60.0)
            assert fleet.replicas[1].strategy == "grail"
            assert fleet.replicas[1].rebuild_error is None
            # And the rebuilt replica still answers exactly.
            for (sources, targets), truth in list(expected.items())[:5]:
                result = fleet.replicas[1].engine.run(
                    ReachQuery(sources, targets)
                )
                assert set(result.pairs) == truth
        finally:
            service.close()
            fleet.close()

    def test_retune_during_traffic_never_blocks_reads(self, graph):
        service, fleet = make_service(graph, epoch_flush="background", num_workers=4)
        try:
            queries = sample_queries(graph, count=10)
            for sources, targets in queries:
                service.handle(QueryRequest(sources, targets, tenant="point"))
            result = fleet.retune()
            assert result.applied
            for sources, targets in queries:
                response = service.handle(
                    QueryRequest(sources, targets, use_cache=False)
                )
                assert not isinstance(response, ErrorResponse), response
                assert set(response.pairs) == reachable_pairs(
                    graph, sources, targets
                )
            assert fleet.wait_for_maintenance(timeout=60.0)
        finally:
            service.close()
            fleet.close()


class TestSocketTransport:
    def test_tenants_and_fleet_stats_travel_the_wire(self, graph):
        service, fleet = make_service(graph, num_workers=2)
        server = DSRSocketServer(service).start()
        try:
            host, port = server.address
            with DSRClient(host, port) as client:
                response = client.request(
                    QueryRequest((1,), (2,), tenant="wire")
                )
                assert not isinstance(response, ErrorResponse), response
                stats = client.request(StatsRequest()).stats
                assert "fleet" in stats
                tenants = {
                    cls[0]
                    for cls in (
                        c.fingerprint
                        for c in fleet.router.histogram.snapshot()
                    )
                }
                assert "wire" in tenants
        finally:
            server.stop()
            service.close()
            fleet.close()
