"""Tuner convergence and retune semantics.

The convergence tests pin the two properties inherited from the
``best_cost`` / ``next_cost`` stopping rule: the modeled-cost trajectory is
*strictly decreasing* past its first entry (iterations are only accepted on a
strict improvement) and the loop *terminates* (costs come from the finite
class × strategy table, so a strictly decreasing sequence must stop).
"""

import pytest

from repro.api import DSRConfig, ReachQuery
from repro.fleet import FleetTuner, QueryClass, ReplicaFleet
from repro.graph import generators


def make_fleet(strategies, seed=5):
    graph = generators.social_graph(150, avg_degree=4, seed=seed)
    return ReplicaFleet.from_config(
        graph,
        DSRConfig(num_partitions=3, replicas=list(strategies), seed=seed),
    )


def synthetic_classes():
    """A bimodal workload: a heavy pointwise class and a heavy sweep class."""
    return [
        QueryClass(("point", "auto", "auto", 1, 1), weight=50.0,
                   num_sources=1, num_targets=1),
        QueryClass(("sweep", "auto", "auto", 7, 4), weight=10.0,
                   num_sources=96, num_targets=8),
    ]


class TestConvergence:
    def test_trajectory_is_strictly_decreasing_and_finite(self):
        # Start from the worst uniform configuration so there is room to move.
        fleet = make_fleet(("dfs", "dfs", "dfs"))
        try:
            strategies, assignment, trajectory = fleet.tuner.cluster_and_tune(
                synthetic_classes()
            )
            assert len(trajectory) >= 2, "dfs-everywhere must be improvable"
            for earlier, later in zip(trajectory, trajectory[1:]):
                assert later < earlier
            assert set(assignment.values()) <= set(range(len(fleet.replicas)))
        finally:
            fleet.close()

    def test_specialises_for_a_bimodal_workload(self):
        fleet = make_fleet(("dfs", "dfs", "dfs"))
        try:
            strategies, assignment, _ = fleet.tuner.cluster_and_tune(
                synthetic_classes()
            )
            point_replica = assignment[("point", "auto", "auto", 1, 1)]
            sweep_replica = assignment[("sweep", "auto", "auto", 7, 4)]
            # The tiny class should land on a materialised-closure replica,
            # the huge root set on a shared-frontier sweep replica.
            assert strategies[point_replica] == "closure"
            assert strategies[sweep_replica] == "msbfs"
        finally:
            fleet.close()

    def test_already_optimal_configuration_stops_immediately(self):
        fleet = make_fleet(("closure", "msbfs", "ferrari"))
        try:
            _, _, trajectory = fleet.tuner.cluster_and_tune(synthetic_classes())
            # The first accepted cost is also the best: one entry, no churn.
            assert len(trajectory) == 1
        finally:
            fleet.close()

    def test_tuning_is_deterministic(self):
        def run():
            fleet = make_fleet(("dfs", "dfs", "dfs"))
            try:
                return fleet.tuner.cluster_and_tune(synthetic_classes())
            finally:
                fleet.close()

        assert run() == run()


class TestRetune:
    def test_empty_workload_is_a_noop(self):
        fleet = make_fleet(("msbfs", "ferrari", "closure"))
        try:
            result = fleet.retune()
            assert not result.applied
            assert result.reason == "empty workload"
            assert fleet.tuner.retune_count == 1
        finally:
            fleet.close()

    def test_retune_installs_table_and_rebuilds(self):
        fleet = make_fleet(("dfs", "dfs", "dfs"))
        try:
            for _ in range(20):
                fleet.route(ReachQuery((1,), (2,), tenant="point"))
            result = fleet.retune()
            assert result.applied
            assert result.modeled_cost == result.cost_trajectory[-1]
            assert fleet.router.routing_table() == result.assignment
            assert result.rebuilds, "dfs replicas should re-specialise"
            for replica_id in result.rebuilds:
                assert fleet.replicas[replica_id].wait_for_rebuild(timeout=30.0)
            rebuilt = {
                fleet.replicas[replica_id].strategy
                for replica_id in result.rebuilds
            }
            assert rebuilt <= set(result.strategies)
            assert "dfs" not in rebuilt
        finally:
            fleet.close()

    def test_concurrent_retune_coalesces(self):
        fleet = make_fleet(("msbfs", "ferrari", "closure"))
        try:
            assert fleet.tuner._lock.acquire(blocking=False)
            try:
                result = fleet.retune()
            finally:
                fleet.tuner._lock.release()
            assert not result.applied
            assert result.reason == "retune already running"
        finally:
            fleet.close()

    def test_tuner_requires_candidates(self):
        fleet = make_fleet(("msbfs",))
        try:
            with pytest.raises(ValueError):
                FleetTuner(fleet, candidates=())
        finally:
            fleet.close()
