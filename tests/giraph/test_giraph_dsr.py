"""Tests for the three Giraph-style DSR baselines (Appendix 8.4)."""

import random

import pytest

from repro.giraph.giraph_dsr import GiraphDSR
from repro.giraph.giraphpp_dsr import GiraphPlusPlusDSR
from repro.giraph.giraphpp_eq_dsr import GiraphPlusPlusEqDSR
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.partition.partition import GraphPartitioning, make_partitioning

VARIANTS = {
    "giraph": GiraphDSR,
    "giraph++": GiraphPlusPlusDSR,
    "giraph++weq": GiraphPlusPlusEqDSR,
}


def make_setting(seed):
    graph = generators.random_digraph(70, 200, seed=seed)
    partitioning = make_partitioning(graph, 4, strategy="metis", seed=seed)
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    return graph, partitioning, rng.sample(vertices, 8), rng.sample(vertices, 8)


@pytest.mark.parametrize("name", sorted(VARIANTS))
class TestCorrectness:
    def test_matches_ground_truth(self, name):
        graph, partitioning, sources, targets = make_setting(seed=3)
        impl = VARIANTS[name](graph, partitioning)
        assert impl.query(sources, targets).pairs == reachable_pairs(
            graph, sources, targets
        )

    def test_paper_example3(self, name, paper_example):
        graph, partitioning, labels = paper_example
        impl = VARIANTS[name](graph, partitioning)
        sources = [labels[x] for x in ("a", "d", "g")]
        targets = [labels[x] for x in ("l", "p")]
        pairs = impl.query(sources, targets).pairs
        assert {(graph.label_of(s), graph.label_of(t)) for s, t in pairs} == {
            (s, t) for s in ("a", "d", "g") for t in ("l", "p")
        }

    def test_single_pair(self, name, paper_example):
        graph, partitioning, labels = paper_example
        impl = VARIANTS[name](graph, partitioning)
        assert impl.reachable(labels["b"], labels["f"])
        assert not impl.reachable(labels["k"], labels["a"])

    def test_boundary_targets(self, name, paper_example):
        graph, partitioning, labels = paper_example
        impl = VARIANTS[name](graph, partitioning)
        pairs = impl.query([labels["a"]], [labels["m"], labels["i"]]).pairs
        assert {(graph.label_of(s), graph.label_of(t)) for s, t in pairs} == {
            ("a", "m"),
            ("a", "i"),
        }


class TestIterativeBehaviour:
    """The structural claims of the paper's comparison."""

    def test_giraph_supersteps_grow_with_path_length(self):
        graph = generators.path_graph(30)
        partitioning = make_partitioning(graph, 3, strategy="hash", seed=1)
        impl = GiraphDSR(graph, partitioning)
        result = impl.query([0], [29])
        assert (0, 29) in result.pairs
        assert result.rounds >= 29

    def test_graph_centric_uses_fewer_supersteps(self):
        graph = generators.path_graph(30)
        # Contiguous partitioning: each partition holds a consecutive block.
        assignment = {v: min(2, v // 10) for v in graph.vertices()}
        partitioning = GraphPartitioning(graph, assignment, 3)
        vertex_centric = GiraphDSR(graph, partitioning).query([0], [29])
        graph_centric = GiraphPlusPlusDSR(graph, partitioning).query([0], [29])
        assert graph_centric.pairs == vertex_centric.pairs
        assert graph_centric.rounds < vertex_centric.rounds

    def test_equivalence_reduces_network_messages(self):
        graph, partitioning, sources, targets = make_setting(seed=11)
        plain = GiraphPlusPlusDSR(graph, partitioning).query(sources, targets)
        with_eq = GiraphPlusPlusEqDSR(graph, partitioning).query(sources, targets)
        assert with_eq.pairs == plain.pairs
        assert with_eq.messages_sent <= plain.messages_sent

    def test_dsr_uses_one_round_while_giraph_iterates(self, paper_example):
        from repro.core.engine import DSREngine

        graph, partitioning, labels = paper_example
        dsr = DSREngine(graph, partitioning=partitioning, local_index="dfs")
        dsr.build_index()
        sources = [labels[x] for x in ("a", "d", "g")]
        targets = [labels[x] for x in ("l", "p")]
        dsr_result = dsr.query_with_stats(sources, targets)
        giraph_result = GiraphDSR(graph, partitioning).query(sources, targets)
        assert dsr_result.pairs == giraph_result.pairs
        assert dsr_result.rounds == 1
        assert giraph_result.rounds > 1
