"""Tests for the vertex-centric and partition-centric BSP engines."""


from repro.giraph.pregel import PartitionCentricEngine, PregelEngine
from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.partition.partition import make_partitioning


class TestPregelEngine:
    def test_single_source_bfs_levels(self):
        """A classic Pregel program: propagate minimum distance from vertex 0."""
        graph = generators.path_graph(6)
        engine = PregelEngine(graph)

        def program(ctx, messages):
            if ctx.superstep == 0:
                new_value = 0 if ctx.vertex == 0 else None
            else:
                candidates = [m for m in messages if m is not None]
                if not candidates:
                    return
                best = min(candidates)
                if ctx.value is not None and ctx.value <= best:
                    return
                new_value = best
            if new_value is None:
                return
            ctx.value = new_value
            for neighbour in ctx.out_neighbors():
                ctx.send_message(neighbour, new_value + 1)

        engine.run(program, {v: None for v in graph.vertices()})
        assert engine.values == {0: 0, 1: 1, 2: 2, 3: 3, 4: 4, 5: 5}

    def test_supersteps_counted(self):
        graph = generators.path_graph(5)
        engine = PregelEngine(graph)

        def flood(ctx, messages):
            if ctx.superstep == 0 and ctx.vertex == 0:
                ctx.value = True
            elif messages:
                if ctx.value:
                    return
                ctx.value = True
            else:
                return
            for neighbour in ctx.out_neighbors():
                ctx.send_message(neighbour, 1)

        stats = engine.run(flood, {v: False for v in graph.vertices()})
        # 0 reaches 4 in 4 hops; plus the seeding superstep.
        assert stats.supersteps == 5

    def test_network_vs_local_messages(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2)])
        partitioning = make_partitioning(graph, 2, strategy="hash", seed=0)

        engine = PregelEngine(graph, partitioning)

        def program(ctx, messages):
            if ctx.superstep == 0:
                for neighbour in ctx.out_neighbors():
                    ctx.send_message(neighbour, "x")

        stats = engine.run(program, {v: None for v in graph.vertices()})
        assert stats.network_messages + stats.local_messages == 2

    def test_max_supersteps_cap(self):
        graph = generators.cycle_graph(4)
        engine = PregelEngine(graph, max_supersteps=3)

        def forever(ctx, messages):
            for neighbour in ctx.out_neighbors():
                ctx.send_message(neighbour, 1)

        stats = engine.run(forever, {v: None for v in graph.vertices()})
        assert stats.supersteps == 3


class TestPartitionCentricEngine:
    def test_partition_program_sees_only_local_inbox(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3)])
        partitioning = make_partitioning(graph, 2, strategy="hash", seed=1)
        engine = PartitionCentricEngine(graph, partitioning)
        seen = {}

        def program(eng, pid, inbox):
            if eng.superstep == 0 and pid == 0:
                for vertex in partitioning.vertices_of(1):
                    eng.send(sorted(partitioning.vertices_of(0))[0], vertex, "hello")
            for vertex in inbox:
                seen[vertex] = pid

        engine.run(program)
        for vertex, pid in seen.items():
            assert partitioning.partition_of(vertex) == pid

    def test_terminates_without_messages(self):
        graph = generators.path_graph(4)
        partitioning = make_partitioning(graph, 2, strategy="hash", seed=0)
        engine = PartitionCentricEngine(graph, partitioning)
        stats = engine.run(lambda eng, pid, inbox: None)
        assert stats.supersteps == 1
