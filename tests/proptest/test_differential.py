"""Differential harness: one random scenario, every configuration axis.

Each seed expands into a full *scenario* — a random graph, an interleaved
update/query script — which is then replayed across the whole configuration
matrix: ``kernels=python/numpy`` × ``executor=serial/threads/processes`` ×
``representation=bits/sets``.  Every cell must produce the exact same pair
sets at every step of the script; the python/serial/sets cell is the
reference semantics, everything else is an implementation detail that is not
allowed to show through.

The executor axis honours ``REPRO_TEST_EXECUTORS`` (same contract as
``tests/core/test_packed_pipeline.py``); the numpy axis is skipped where
numpy is unavailable, which is itself the fallback contract under test in
the default CI job.
"""

import os
import random

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.graph import generators
from repro.reachability.kernels import numpy_available

EXECUTORS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_TEST_EXECUTORS", "serial,threads,processes"
    ).split(",")
    if name.strip()
)

KERNELS = ("python",) + (("numpy",) if numpy_available() else ())

#: Scenario seeds.  Every executor runs the first seed; the (spawn-heavy)
#: processes executor is limited to it, the in-process executors run all.
SEEDS = (71, 72, 73)


def _build_scenario(seed):
    """One reproducible scenario: ``(graph, script)``.

    The script interleaves structural updates (edge deletes/inserts, a
    vertex insert) with query batches, so parity is checked across epoch
    flushes and the sanctioned in-place edits, not just the initial build.
    """
    rng = random.Random(seed)
    n = rng.randrange(40, 80)
    m = rng.randrange(2 * n, 4 * n)
    graph = generators.random_digraph(n, m, seed=seed)
    vertices = sorted(graph.vertices())
    edges = list(graph.edges())
    rng.shuffle(edges)

    def queries(count):
        batch = []
        for _ in range(count):
            batch.append(
                (
                    "query",
                    tuple(rng.sample(vertices, min(8, len(vertices)))),
                    tuple(rng.sample(vertices, min(8, len(vertices)))),
                )
            )
        return batch

    script = []
    script += queries(3)
    for u, v in edges[:4]:
        script.append(("delete_edge", u, v))
    script += queries(2)
    script.append(("insert_vertex", max(vertices) + 1))
    for u, v in edges[4:7]:
        script.append(("insert_edge", u, v))
    script.append(("insert_edge", max(vertices) + 1, vertices[0]))
    script += queries(3)
    return graph, script


def _replay(graph, script, kernels, executor, representation):
    """Run one matrix cell over the scenario; returns the per-query answers."""
    engine = open_engine(
        graph.copy(),
        DSRConfig(
            num_partitions=3,
            local_index="msbfs",
            executor=executor,
            kernels=kernels,
        ),
    )
    answers = []
    try:
        for op in script:
            if op[0] == "query":
                _, sources, targets = op
                result = engine.run(
                    ReachQuery(sources, targets, representation=representation)
                )
                answers.append(result.pairs)
            elif op[0] == "delete_edge":
                engine.delete_edge(op[1], op[2])
            elif op[0] == "insert_edge":
                engine.insert_edge(op[1], op[2])
            elif op[0] == "insert_vertex":
                engine.insert_vertex(vertex=op[1])
            else:  # pragma: no cover - script bug
                raise AssertionError(f"unknown op {op!r}")
    finally:
        engine.close()
    return answers


@pytest.mark.parametrize("seed", SEEDS)
def test_full_matrix_parity(seed):
    graph, script = _build_scenario(seed)
    executors = EXECUTORS if seed == SEEDS[0] else tuple(
        name for name in EXECUTORS if name != "processes"
    )
    if not executors:
        pytest.skip("no executors selected via REPRO_TEST_EXECUTORS")
    reference = _replay(graph, script, "python", executors[0], "sets")
    assert reference, "scenario produced no queries"
    for executor in executors:
        for kernels in KERNELS:
            for representation in ("bits", "sets"):
                answers = _replay(graph, script, kernels, executor, representation)
                assert answers == reference, (
                    f"kernels={kernels} executor={executor} "
                    f"representation={representation} diverges from reference"
                )


@pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
def test_kernels_config_round_trip_and_validation():
    from repro.api.config import ConfigError

    config = DSRConfig(kernels="numpy")
    assert DSRConfig.from_dict(config.to_dict()) == config
    with pytest.raises(ConfigError):
        DSRConfig(kernels="simd")


def test_python_kernels_always_accepted():
    config = DSRConfig(kernels="python")
    assert config.to_dict()["kernels"] == "python"
