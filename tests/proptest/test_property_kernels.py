"""Hypothesis property layer: numpy kernels are byte-identical to python.

Where ``test_differential.py`` replays fixed seeded scenarios through whole
engines, this file attacks the kernel boundary directly with
hypothesis-generated graphs, seeds and masks — the raw
``propagate`` / ``set_reachability_rows`` / ``pack_ranks`` contracts, where
"identical" means identical Python ints (same bytes, same everything).

Skipped wholesale when hypothesis or numpy is missing; the pure-python
backend needs no differential witness — it *is* the reference.
"""

import pytest

hypothesis = pytest.importorskip("hypothesis")
from hypothesis import HealthCheck, given, settings, strategies as st  # noqa: E402

from repro.graph.digraph import DiGraph  # noqa: E402
from repro.reachability import bitset_msbfs  # noqa: E402
from repro.reachability.kernels import (  # noqa: E402
    np_pack_ranks,
    np_propagate,
    np_set_reachability_rows,
    numpy_available,
    use_kernels,
)
from repro.reachability.packed import pack_ranks  # noqa: E402

pytestmark = pytest.mark.skipif(not numpy_available(), reason="numpy not installed")

COMMON_SETTINGS = settings(
    max_examples=60,
    deadline=None,
    derandomize=True,
    suppress_health_check=[HealthCheck.too_slow],
)

vertex_ids = st.integers(min_value=0, max_value=60)
edge_lists = st.lists(st.tuples(vertex_ids, vertex_ids), max_size=200)


def _graph_of(edges, extra_vertices=()):
    graph = DiGraph()
    for vertex in extra_vertices:
        graph.add_vertex(vertex)
    for u, v in edges:
        graph.add_vertex(u)
        graph.add_vertex(v)
        if u != v:
            graph.add_edge(u, v)
    return graph


@COMMON_SETTINGS
@given(
    edges=edge_lists,
    isolated=st.lists(st.integers(min_value=61, max_value=70), max_size=4),
    seed_positions=st.lists(st.integers(min_value=0, max_value=59), max_size=6),
    seed_widths=st.lists(st.integers(min_value=1, max_value=700), min_size=6, max_size=6),
    reverse=st.booleans(),
)
def test_propagate_parity(edges, isolated, seed_positions, seed_widths, reverse):
    graph = _graph_of(edges, isolated)
    if not graph.num_vertices:
        return
    csr = graph.csr()
    seeds = {}
    for position, width in zip(seed_positions, seed_widths):
        index = position % csr.num_vertices
        seeds[index] = seeds.get(index, 0) | (1 << (width - 1)) | (width * 7919)
    with use_kernels("python"):
        reference = bitset_msbfs.propagate(csr, seeds, reverse=reverse)
    assert np_propagate(csr, seeds, reverse=reverse) == reference


@COMMON_SETTINGS
@given(
    edges=edge_lists,
    source_picks=st.lists(st.integers(min_value=0, max_value=59), max_size=40),
    mask_seed=st.one_of(st.none(), st.integers(min_value=0, max_value=2**80 - 1)),
    batch_size=st.sampled_from([1, 3, 64, 512]),
)
def test_set_reachability_rows_parity(edges, source_picks, mask_seed, batch_size):
    graph = _graph_of(edges)
    if not graph.num_vertices:
        return
    csr = graph.csr()
    ids = sorted(graph.vertices())
    sources = [ids[p % len(ids)] for p in source_picks]
    mask = None if mask_seed is None else mask_seed % (1 << csr.num_vertices)
    with use_kernels("python"):
        reference = bitset_msbfs.set_reachability_rows(
            csr, sources, mask, batch_size=batch_size
        )
    got = np_set_reachability_rows(csr, sources, mask, batch_size=batch_size)
    assert got == reference
    # Byte-identical, not merely equal-as-sets: compare serialised rows too.
    for source in reference:
        assert got[source].to_bytes(
            (got[source].bit_length() + 7) // 8, "little"
        ) == reference[source].to_bytes(
            (reference[source].bit_length() + 7) // 8, "little"
        )


@COMMON_SETTINGS
@given(
    ranks=st.lists(st.integers(min_value=0, max_value=5000), max_size=300).map(
        lambda values: sorted(set(values))
    )
)
def test_pack_ranks_parity(ranks):
    with use_kernels("python"):
        reference = pack_ranks(ranks)
    if ranks:
        assert np_pack_ranks(ranks) == reference
    with use_kernels("numpy"):
        assert pack_ranks(ranks) == reference
