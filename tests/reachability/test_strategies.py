"""Unit tests for every centralized reachability strategy.

Each strategy is exercised on hand-built graphs with known answers and on
random graphs against the ground-truth traversal.
"""

import pytest

from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.graph.traversal import reachable_pairs
from repro.reachability import (
    DFSReachability,
    FerrariIndex,
    GrailIndex,
    MultiSourceBFS,
    TransitiveClosureIndex,
)
from repro.reachability.factory import available_strategies, make_reachability_index

ALL_STRATEGIES = ["dfs", "msbfs", "ferrari", "grail", "closure"]


@pytest.fixture
def diamond():
    return DiGraph.from_edges([(0, 1), (0, 2), (1, 3), (2, 3), (3, 4), (5, 5)])


@pytest.mark.parametrize("strategy", ALL_STRATEGIES)
class TestAllStrategies:
    def test_basic_reachability(self, strategy, diamond):
        index = make_reachability_index(strategy, diamond)
        assert index.reachable(0, 4)
        assert index.reachable(1, 3)
        assert not index.reachable(4, 0)
        assert not index.reachable(3, 2)

    def test_self_reachability(self, strategy, diamond):
        index = make_reachability_index(strategy, diamond)
        assert index.reachable(2, 2)
        assert index.reachable(5, 5)

    def test_missing_vertices(self, strategy, diamond):
        index = make_reachability_index(strategy, diamond)
        assert not index.reachable(0, 99)
        assert not index.reachable(99, 0)

    def test_set_reachability_matches_ground_truth(self, strategy):
        graph = generators.random_digraph(70, 220, seed=11)
        index = make_reachability_index(strategy, graph)
        sources = list(range(0, 30, 3))
        targets = list(range(1, 60, 5))
        assert index.reachable_pairs(sources, targets) == reachable_pairs(
            graph, sources, targets
        )

    def test_set_reachability_on_cyclic_graph(self, strategy):
        graph = generators.social_graph(120, avg_degree=5, reciprocity=0.5, seed=3)
        index = make_reachability_index(strategy, graph)
        sources = list(range(0, 40, 4))
        targets = list(range(2, 80, 7))
        assert index.reachable_pairs(sources, targets) == reachable_pairs(
            graph, sources, targets
        )

    def test_sources_overlapping_targets(self, strategy, diamond):
        index = make_reachability_index(strategy, diamond)
        result = index.set_reachability([0, 3], [0, 3, 4])
        assert result[0] == {0, 3, 4}
        assert result[3] == {3, 4}


class TestFactory:
    def test_available_strategies(self):
        assert set(ALL_STRATEGIES) <= set(available_strategies())

    def test_unknown_strategy_raises(self):
        with pytest.raises(ValueError):
            make_reachability_index("magic", DiGraph())

    def test_case_insensitive(self, diamond):
        index = make_reachability_index("MSBFS", diamond)
        assert isinstance(index, MultiSourceBFS)


class TestMultiSourceBFS:
    def test_batching_produces_same_answer(self):
        graph = generators.random_digraph(80, 260, seed=4)
        small_batches = MultiSourceBFS(graph, batch_size=3)
        one_batch = MultiSourceBFS(graph, batch_size=1000)
        sources = list(range(0, 40))
        targets = list(range(40, 80))
        assert small_batches.set_reachability(sources, targets) == one_batch.set_reachability(
            sources, targets
        )


class TestFerrari:
    def test_interval_budget_respected(self):
        graph = generators.dag(150, 420, seed=5)
        index = FerrariIndex(graph, max_intervals=2, num_seeds=5)
        for intervals in index._intervals.values():
            assert len(intervals) <= 2

    def test_tighter_budget_still_correct(self):
        graph = generators.random_digraph(80, 240, seed=6)
        loose = FerrariIndex(graph, max_intervals=16, num_seeds=0)
        tight = FerrariIndex(graph, max_intervals=1, num_seeds=4)
        pairs = [(s, t) for s in range(0, 40, 5) for t in range(1, 80, 9)]
        for s, t in pairs:
            assert loose.reachable(s, t) == tight.reachable(s, t)

    def test_index_size_reported(self):
        graph = generators.dag(60, 150, seed=7)
        assert FerrariIndex(graph).index_size() > 0

    def test_rebuild_after_mutation(self):
        graph = generators.path_graph(6)
        index = FerrariIndex(graph)
        assert not index.reachable(5, 0)
        graph.add_edge(5, 0)
        index.rebuild()
        assert index.reachable(5, 0)


class TestGrail:
    def test_negative_pruning_is_safe(self):
        graph = generators.random_digraph(90, 250, seed=8)
        index = GrailIndex(graph, num_labels=2, seed=1)
        truth = TransitiveClosureIndex(graph)
        for s in range(0, 90, 7):
            for t in range(3, 90, 11):
                assert index.reachable(s, t) == truth.reachable(s, t)

    def test_index_size_scales_with_labels(self):
        graph = generators.dag(50, 120, seed=9)
        one = GrailIndex(graph, num_labels=1)
        three = GrailIndex(graph, num_labels=3)
        assert three.index_size() == 3 * one.index_size()


class TestTransitiveClosure:
    def test_closure_size(self):
        graph = generators.path_graph(4)  # closure: 4+3+2+1 component entries
        index = TransitiveClosureIndex(graph)
        assert index.index_size() == 10

    def test_cycle_collapses(self):
        graph = generators.cycle_graph(10)
        index = TransitiveClosureIndex(graph)
        assert index.index_size() == 1
        assert index.reachable(3, 9)


class TestDFS:
    def test_no_index_overhead(self):
        graph = generators.path_graph(10)
        index = DFSReachability(graph)
        assert index.index_size() == 0
        assert index.reachable(0, 9)
