"""Property tests for the CSR bitset multi-source BFS kernel.

The kernel must agree with per-source :class:`DFSReachability` (and the
reference traversal) on random DAGs and cyclic graphs, including queries
where sources and targets overlap and pairs that are unreachable.
"""

import pytest

from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.graph.traversal import multi_source_reachability
from repro.reachability import bitset_msbfs
from repro.reachability.dfs import DFSReachability


def kernel_answer(graph, sources, targets, **kwargs):
    return bitset_msbfs.set_reachability(graph.csr(), sources, targets, **kwargs)


class TestAgainstPerSourceDFS:
    @pytest.mark.parametrize("seed", range(6))
    def test_random_dags(self, seed):
        graph = generators.dag(60, 150, seed=seed)
        sources = list(range(0, 60, 4))
        targets = list(range(1, 60, 3))
        expected = DFSReachability(graph).set_reachability(sources, targets)
        assert kernel_answer(graph, sources, targets) == expected

    @pytest.mark.parametrize("seed", range(6))
    def test_random_cyclic_graphs(self, seed):
        graph = generators.random_digraph(70, 260, seed=seed)
        sources = list(range(0, 70, 5))
        targets = list(range(2, 70, 4))
        expected = DFSReachability(graph).set_reachability(sources, targets)
        assert kernel_answer(graph, sources, targets) == expected
        assert kernel_answer(graph, sources, targets) == multi_source_reachability(
            graph, sources, targets
        )

    @pytest.mark.parametrize("seed", range(4))
    def test_sources_overlapping_targets(self, seed):
        graph = generators.social_graph(80, avg_degree=4, seed=seed)
        vertices = sorted(graph.vertices())
        shared = vertices[10:30]
        expected = DFSReachability(graph).set_reachability(shared, shared)
        result = kernel_answer(graph, shared, shared)
        assert result == expected
        for vertex in shared:
            assert vertex in result[vertex]  # every vertex reaches itself

    def test_unreachable_pairs(self):
        # Two disconnected chains: nothing crosses over.
        graph = DiGraph.from_edges([(0, 1), (1, 2), (10, 11), (11, 12)])
        result = kernel_answer(graph, [0, 10], [2, 12])
        assert result == {0: {2}, 10: {12}}

    def test_batching_matches_single_pass(self):
        graph = generators.random_digraph(90, 320, seed=9)
        sources = list(range(0, 90, 2))
        targets = list(range(1, 90, 2))
        whole = kernel_answer(graph, sources, targets)
        batched = kernel_answer(graph, sources, targets, batch_size=7)
        assert whole == batched


class TestEdgeCases:
    def test_missing_sources_and_targets(self):
        graph = DiGraph.from_edges([(0, 1)])
        result = kernel_answer(graph, [0, 404], [1, 505])
        assert result == {0: {1}, 404: set()}

    def test_empty_query_sides(self):
        graph = DiGraph.from_edges([(0, 1)])
        assert kernel_answer(graph, [], [1]) == {}
        assert kernel_answer(graph, [0], []) == {0: set()}

    def test_duplicate_sources(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2)])
        result = kernel_answer(graph, [0, 0], [2])
        assert result == {0: {2}}

    def test_self_loop_and_cycle(self):
        graph = DiGraph.from_edges([(0, 0), (0, 1), (1, 0)])
        result = kernel_answer(graph, [0, 1], [0, 1])
        assert result == {0: {0, 1}, 1: {0, 1}}

    def test_invalid_batch_size(self):
        graph = DiGraph.from_edges([(0, 1)])
        with pytest.raises(ValueError):
            kernel_answer(graph, [0], [1], batch_size=0)

    def test_reverse_propagation(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2)])
        csr = graph.csr()
        seen = bitset_msbfs.propagate(csr, {csr.index_of(2): 1}, reverse=True)
        reached = {csr.vertex_at(i) for i, bits in enumerate(seen) if bits}
        assert reached == {0, 1, 2}

    def test_single_pair_helper(self):
        graph = DiGraph.from_edges([(0, 1), (1, 2)])
        assert bitset_msbfs.reachable(graph.csr(), 0, 2)
        assert not bitset_msbfs.reachable(graph.csr(), 2, 0)
