"""Property-based tests: every strategy agrees with the transitive closure."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.graph.digraph import DiGraph
from repro.reachability.factory import make_reachability_index

edge_lists = st.lists(
    st.tuples(st.integers(0, 11), st.integers(0, 11)),
    min_size=0,
    max_size=45,
)

query_sets = st.tuples(
    st.sets(st.integers(0, 11), min_size=1, max_size=5),
    st.sets(st.integers(0, 11), min_size=1, max_size=5),
)


@given(edges=edge_lists, query=query_sets)
@settings(max_examples=40, deadline=None)
def test_all_strategies_agree(edges, query):
    graph = DiGraph.from_edges(edges, vertices=range(12))
    sources, targets = query
    reference = make_reachability_index("closure", graph).reachable_pairs(sources, targets)
    for name in ("dfs", "msbfs", "ferrari", "grail"):
        index = make_reachability_index(name, graph)
        assert index.reachable_pairs(sources, targets) == reference, name


@given(edges=edge_lists)
@settings(max_examples=40, deadline=None)
def test_reachability_is_transitive(edges):
    graph = DiGraph.from_edges(edges, vertices=range(12))
    index = make_reachability_index("closure", graph)
    vertices = list(range(12))
    for a in vertices[:6]:
        for b in vertices[:6]:
            if not index.reachable(a, b):
                continue
            for c in vertices[6:]:
                if index.reachable(b, c):
                    assert index.reachable(a, c)


@given(edges=edge_lists)
@settings(max_examples=40, deadline=None)
def test_edge_implies_reachability(edges):
    graph = DiGraph.from_edges(edges, vertices=range(12))
    index = make_reachability_index("ferrari", graph)
    for u, v in graph.edges():
        assert index.reachable(u, v)
