"""Packed rows: VertexRank, byte serialisation and the bits protocol.

``set_reachability_bits`` must agree exactly with ``set_reachability`` for
every registered strategy — natively for the traversal kernels (bitset
MS-BFS, CSR DFS) and through the default set↔bits bridge for the index
strategies (ferrari, grail, closure).
"""

import random

import pytest

from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.reachability import bitset_msbfs, make_reachability_index
from repro.reachability.packed import (
    VertexRank,
    iter_bits,
    popcount,
    row_from_bytes,
    row_to_bytes,
)

STRATEGIES = ["dfs", "msbfs", "bitset", "ferrari", "grail", "closure"]


class TestPackedPrimitives:
    def test_iter_bits_matches_binary(self):
        rng = random.Random(3)
        for _ in range(50):
            row = rng.getrandbits(rng.randrange(1, 300))
            expected = [i for i in range(row.bit_length()) if row >> i & 1]
            assert list(iter_bits(row)) == expected
            assert popcount(row) == len(expected)

    def test_iter_bits_empty(self):
        assert list(iter_bits(0)) == []

    def test_row_bytes_round_trip(self):
        rng = random.Random(5)
        for _ in range(50):
            row = rng.getrandbits(rng.randrange(0, 500))
            assert row_from_bytes(row_to_bytes(row)) == row
        assert row_to_bytes(0) == b""
        assert row_from_bytes(b"") == 0

    def test_vertex_rank_pack_unpack(self):
        rank = VertexRank((5, 9, 11, 40))
        assert len(rank) == 4
        assert 9 in rank and 7 not in rank
        row = rank.pack([40, 5, 7])  # unknown id 7 skipped
        assert row == 0b1001
        assert rank.unpack(row) == [5, 40]
        assert rank.full_mask() == 0b1111

    def test_from_csr_matches_dense_numbering(self):
        graph = generators.random_digraph(40, 120, seed=2)
        csr = graph.csr()
        rank = VertexRank.from_csr(csr)
        assert rank.ids == csr.ids
        for vertex in graph.vertices():
            assert rank.rank_of[vertex] == csr.index_of(vertex)


class TestKernelRows:
    def test_rows_match_set_reachability(self):
        graph = generators.random_digraph(60, 200, seed=4)
        csr = graph.csr()
        rank = VertexRank.from_csr(csr)
        vertices = sorted(graph.vertices())
        rng = random.Random(9)
        sources = rng.sample(vertices, 12)
        targets = rng.sample(vertices, 15)
        mask = rank.pack(targets)
        rows = bitset_msbfs.set_reachability_rows(csr, sources, mask)
        sets = bitset_msbfs.set_reachability(csr, sources, targets)
        for source in sources:
            assert set(rank.unpack(rows[source])) == sets[source]

    def test_rows_full_universe(self):
        graph = DiGraph.from_edges([(1, 2), (2, 3), (3, 1), (3, 4)])
        csr = graph.csr()
        rank = VertexRank.from_csr(csr)
        rows = bitset_msbfs.set_reachability_rows(csr, [1], None)
        assert set(rank.unpack(rows[1])) == {1, 2, 3, 4}

    def test_unknown_source_and_empty_mask(self):
        graph = DiGraph.from_edges([(1, 2)])
        csr = graph.csr()
        rows = bitset_msbfs.set_reachability_rows(csr, [99], None)
        assert rows == {99: 0}
        rows = bitset_msbfs.set_reachability_rows(csr, [1], 0)
        assert rows == {1: 0}

    def test_batching_splits_agree(self):
        graph = generators.random_digraph(50, 160, seed=6)
        csr = graph.csr()
        rank = VertexRank.from_csr(csr)
        sources = sorted(graph.vertices())[:20]
        mask = rank.full_mask()
        wide = bitset_msbfs.set_reachability_rows(csr, sources, mask)
        narrow = bitset_msbfs.set_reachability_rows(csr, sources, mask, batch_size=3)
        assert wide == narrow


@pytest.mark.parametrize("strategy", STRATEGIES)
class TestProtocolParity:
    """set_reachability_bits == packed set_reachability for every strategy."""

    def test_bits_match_sets(self, strategy):
        graph = generators.social_graph(80, avg_degree=4, seed=11)
        index = make_reachability_index(strategy, graph)
        rank = VertexRank.from_csr(graph.csr())
        rng = random.Random(13)
        vertices = sorted(graph.vertices())
        sources = rng.sample(vertices, 10)
        targets = rng.sample(vertices, 12)
        mask = rank.pack(targets)
        rows = index.set_reachability_bits(sources, rank, mask)
        sets = index.set_reachability(sources, targets)
        for source in sources:
            assert set(rank.unpack(rows[source])) == sets[source], (
                f"{strategy}: diverging row for source {source}"
            )

    def test_no_mask_covers_all_vertices(self, strategy):
        graph = generators.random_digraph(40, 100, seed=21)
        index = make_reachability_index(strategy, graph)
        rank = VertexRank.from_csr(graph.csr())
        sources = sorted(graph.vertices())[:6]
        rows = index.set_reachability_bits(sources, rank)
        sets = index.set_reachability(sources, graph.vertices())
        for source in sources:
            assert set(rank.unpack(rows[source])) == sets[source]

    def test_foreign_rank_falls_back_to_bridge(self, strategy):
        # A rank over a subset universe (not the CSR's dense numbering)
        # must still produce correct rows via the generic bridge.
        graph = generators.random_digraph(30, 80, seed=31)
        index = make_reachability_index(strategy, graph)
        subset = sorted(graph.vertices())[::2]
        rank = VertexRank(subset)
        sources = subset[:5]
        rows = index.set_reachability_bits(sources, rank, rank.full_mask())
        sets = index.set_reachability(sources, subset)
        for source in sources:
            assert set(rank.unpack(rows[source])) == sets[source]


class TestConcurrentDFS:
    """One DFSReachability instance must stay correct under concurrent use.

    The service layer runs lock-free reads against one engine; the visited
    buffer is per-thread, so parallel traversals cannot truncate each other.
    """

    def test_threaded_queries_match_serial(self):
        import threading

        graph = generators.social_graph(150, avg_degree=4, seed=91)
        index = make_reachability_index("dfs", graph)
        rank = VertexRank.from_csr(graph.csr())
        vertices = sorted(graph.vertices())
        sources = vertices[:20]
        mask = rank.full_mask()
        expected_sets = index.set_reachability(sources, vertices)
        expected_rows = index.set_reachability_bits(sources, rank, mask)

        failures = []

        def worker():
            for _ in range(10):
                if index.set_reachability(sources, vertices) != expected_sets:
                    failures.append("sets")
                if index.set_reachability_bits(sources, rank, mask) != expected_rows:
                    failures.append("bits")

        threads = [threading.Thread(target=worker) for _ in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not failures
