"""Unit tests for the kernel backend switch (`repro.reachability.kernels`).

Parity of the numpy kernels themselves is covered by ``tests/proptest``;
this file tests the selection machinery — resolution, the process-global
switch, the context manager, and the dispatch points in
``bitset_msbfs``/``packed``.
"""

import pytest

from repro.reachability import kernels
from repro.reachability.kernels import (
    KERNEL_NAMES,
    kernel_backend,
    numpy_available,
    resolve_kernels,
    set_kernel_backend,
    use_kernels,
)


class TestResolution:
    def test_python_always_resolves(self):
        assert resolve_kernels("python") == "python"

    def test_auto_resolves_to_a_concrete_backend(self):
        assert resolve_kernels("auto") in ("python", "numpy")

    def test_unknown_name_rejected(self):
        with pytest.raises(ValueError):
            resolve_kernels("simd")

    def test_names_constant_covers_all_accepted_spellings(self):
        assert set(KERNEL_NAMES) == {"auto", "python", "numpy"}
        for name in KERNEL_NAMES:
            resolve_kernels(name)  # none raise while numpy is installed

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_auto_prefers_numpy_when_available(self):
        assert resolve_kernels("auto") == "numpy"


class TestGlobalSwitch:
    def test_set_and_restore(self):
        previous = kernel_backend()
        try:
            assert set_kernel_backend("python") == "python"
            assert kernel_backend() == "python"
        finally:
            set_kernel_backend(previous)

    def test_use_kernels_restores_on_exit(self):
        previous = kernel_backend()
        with use_kernels("python"):
            assert kernel_backend() == "python"
        assert kernel_backend() == previous

    def test_use_kernels_restores_on_error(self):
        previous = kernel_backend()
        with pytest.raises(RuntimeError):
            with use_kernels("python"):
                raise RuntimeError("boom")
        assert kernel_backend() == previous

    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_switch_changes_dispatch_not_answers(self):
        from repro.graph.digraph import DiGraph
        from repro.reachability.bitset_msbfs import set_reachability_rows

        graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (0, 3), (3, 4)])
        csr = graph.csr()
        sources = sorted(graph.vertices())
        with use_kernels("python"):
            reference = set_reachability_rows(csr, sources)
        with use_kernels("numpy"):
            assert set_reachability_rows(csr, sources) == reference


class TestPackDispatchThreshold:
    @pytest.mark.skipif(not numpy_available(), reason="numpy not installed")
    def test_small_and_large_rank_lists_agree(self):
        from repro.reachability.packed import _NUMPY_PACK_THRESHOLD, pack_ranks

        small = list(range(_NUMPY_PACK_THRESHOLD - 1))
        large = list(range(0, 10 * _NUMPY_PACK_THRESHOLD, 3))
        with use_kernels("python"):
            small_ref, large_ref = pack_ranks(small), pack_ranks(large)
        with use_kernels("numpy"):
            assert pack_ranks(small) == small_ref
            assert pack_ranks(large) == large_ref


class TestEnvSeeding:
    def test_module_default_matches_environment(self, monkeypatch):
        # The module-level default was computed at import from REPRO_KERNELS;
        # what we can still test here is that an explicit re-seed through
        # set_kernel_backend honours the same resolution rules.
        previous = kernel_backend()
        try:
            assert set_kernel_backend("auto") == resolve_kernels("auto")
        finally:
            set_kernel_backend(previous)

    def test_numpy_unavailability_is_a_config_error_not_a_crash(self):
        if numpy_available():
            pytest.skip("numpy installed: the unavailable branch is dead here")
        with pytest.raises(ValueError):
            resolve_kernels("numpy")
        assert kernels.resolve_kernels("auto") == "python"
