"""Documentation health checks: links must resolve, examples must run.

Documentation rots silently unless it is executed: this module resolves
every relative Markdown link in README.md and docs/*.md against the
repository tree, and runs the ``>>>`` doctest blocks embedded in
docs/ARCHITECTURE.md.  The CI ``docs`` job runs exactly these checks.
"""

import doctest
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent.parent

#: Markdown files whose links are checked, relative to the repo root.
DOC_FILES = sorted(
    [REPO_ROOT / "README.md"] + list((REPO_ROOT / "docs").glob("*.md"))
)

_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")


def relative_links(markdown_path: Path):
    """Yield (link, resolved target path) for every relative link."""
    for match in _LINK.finditer(markdown_path.read_text(encoding="utf-8")):
        link = match.group(1)
        if link.startswith(("http://", "https://", "mailto:", "#")):
            continue
        target = link.split("#", 1)[0]
        if not target:
            continue
        yield link, (markdown_path.parent / target).resolve()


def test_doc_files_exist():
    assert (REPO_ROOT / "docs" / "ARCHITECTURE.md") in DOC_FILES
    assert (REPO_ROOT / "docs" / "BENCHMARKS.md") in DOC_FILES


@pytest.mark.parametrize(
    "doc", DOC_FILES, ids=[str(p.relative_to(REPO_ROOT)) for p in DOC_FILES]
)
def test_relative_links_resolve(doc):
    broken = [
        link for link, target in relative_links(doc) if not target.exists()
    ]
    assert not broken, f"{doc.relative_to(REPO_ROOT)} has broken links: {broken}"


def test_architecture_doctests_pass():
    """The ``>>>`` blocks in ARCHITECTURE.md are executable and correct."""
    # No option flags, so this check stays exactly as strict as the CI
    # job's direct `python -m doctest docs/ARCHITECTURE.md` step.
    failures, tests = doctest.testfile(
        str(REPO_ROOT / "docs" / "ARCHITECTURE.md"),
        module_relative=False,
    )
    assert tests > 0, "ARCHITECTURE.md lost its executable examples"
    assert failures == 0
