"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCliCommands:
    def test_info(self, capsys):
        assert main(["info", "amazon", "--scale", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "Amazon analogue" in output
        assert "metis" in output and "hash" in output

    def test_query(self, capsys):
        code = main(
            [
                "query",
                "stanford",
                "--scale",
                "0.15",
                "--partitions",
                "3",
                "--sources",
                "5",
                "--targets",
                "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "query |S|=5 |T|=5" in output
        assert "rounds" in output

    def test_query_without_equivalence(self, capsys):
        code = main(
            ["query", "notredame", "--scale", "0.15", "--no-equivalence", "--sources", "3",
             "--targets", "3"]
        )
        assert code == 0

    def test_compare(self, capsys):
        code = main(
            [
                "compare",
                "notredame",
                "--scale",
                "0.15",
                "--partitions",
                "3",
                "--sources",
                "4",
                "--targets",
                "4",
                "--approaches",
                "dsr,giraph++",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "dsr" in output and "giraph++" in output

    def test_compare_unknown_approach(self, capsys):
        assert main(["compare", "amazon", "--approaches", "magic"]) == 2

    def test_sparql_lubm(self, capsys):
        assert main(["sparql", "lubm", "--scale", "0.3", "--slaves", "2"]) == 0
        output = capsys.readouterr().out
        assert "L1" in output and "L3" in output

    def test_sparql_freebase(self, capsys):
        assert main(["sparql", "freebase", "--scale", "0.4", "--slaves", "2"]) == 0
        output = capsys.readouterr().out
        assert "F1" in output

    def test_communities(self, capsys):
        code = main(["communities", "--scale", "0.4", "--representatives", "5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "community connectedness" in output

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "not-a-dataset"])
