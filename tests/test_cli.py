"""Tests for the command-line interface."""

import pytest

from repro.cli import main


class TestCliCommands:
    def test_info(self, capsys):
        assert main(["info", "amazon", "--scale", "0.2"]) == 0
        output = capsys.readouterr().out
        assert "Amazon analogue" in output
        assert "metis" in output and "hash" in output

    def test_query(self, capsys):
        code = main(
            [
                "query",
                "stanford",
                "--scale",
                "0.15",
                "--partitions",
                "3",
                "--sources",
                "5",
                "--targets",
                "5",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "query |S|=5 |T|=5" in output
        assert "rounds" in output

    def test_query_without_equivalence(self, capsys):
        code = main(
            ["query", "notredame", "--scale", "0.15", "--no-equivalence", "--sources", "3",
             "--targets", "3"]
        )
        assert code == 0

    def test_compare(self, capsys):
        code = main(
            [
                "compare",
                "notredame",
                "--scale",
                "0.15",
                "--partitions",
                "3",
                "--sources",
                "4",
                "--targets",
                "4",
                "--approaches",
                "dsr,giraph++",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "dsr" in output and "giraph++" in output

    def test_compare_unknown_approach(self, capsys):
        assert main(["compare", "amazon", "--approaches", "magic"]) == 2

    def test_sparql_lubm(self, capsys):
        assert main(["sparql", "lubm", "--scale", "0.3", "--slaves", "2"]) == 0
        output = capsys.readouterr().out
        assert "L1" in output and "L3" in output

    def test_sparql_freebase(self, capsys):
        assert main(["sparql", "freebase", "--scale", "0.4", "--slaves", "2"]) == 0
        output = capsys.readouterr().out
        assert "F1" in output

    def test_communities(self, capsys):
        code = main(["communities", "--scale", "0.4", "--representatives", "5"])
        assert code == 0
        output = capsys.readouterr().out
        assert "community connectedness" in output

    def test_serve_self_test(self, capsys):
        code = main(
            ["serve", "amazon", "--scale", "0.15", "--partitions", "3",
             "--workers", "2", "--self-test"]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "self-test passed" in output
        assert "serving metrics" in output

    def test_serve_self_test_without_cache(self, capsys):
        code = main(
            ["serve", "amazon", "--scale", "0.15", "--partitions", "3",
             "--workers", "2", "--no-cache", "--self-test"]
        )
        assert code == 0

    def test_serve_socket_with_max_requests(self, capsys):
        import socket
        import threading
        import time

        from repro.service import DSRClient

        # Reserve a free port, then run the server on it in a helper thread;
        # --max-requests makes it exit once the client uses up the budget.
        probe = socket.socket()
        probe.bind(("127.0.0.1", 0))
        port = probe.getsockname()[1]
        probe.close()
        result = {}

        def run_server():
            try:
                result["code"] = main(
                    ["serve", "amazon", "--scale", "0.15", "--partitions", "3",
                     "--port", str(port), "--max-requests", "2"]
                )
            except BaseException as exc:  # surfaced by the asserts below
                result["error"] = exc

        thread = threading.Thread(target=run_server)
        thread.start()
        response = None
        for _ in range(100):
            if "error" in result:
                break
            try:
                with DSRClient("127.0.0.1", port, timeout=5.0) as client:
                    client.stats()
                    response = client.query([0, 1], [40, 41])
                break
            except OSError:
                time.sleep(0.05)
        thread.join(timeout=30)
        assert not thread.is_alive()
        assert result.get("error") is None
        assert result.get("code") == 0
        assert response is not None and not response.cached
        output = capsys.readouterr().out
        assert "served 2 requests" in output

    def test_missing_command_rejected(self):
        with pytest.raises(SystemExit):
            main([])

    def test_unknown_dataset_rejected(self):
        with pytest.raises(SystemExit):
            main(["info", "not-a-dataset"])


class TestAsyncServeCli:
    def test_serve_async_starts_and_stops(self, capsys, monkeypatch):
        # Let the command run its full path (engine build, real async server
        # on a thread, shutdown, metrics table) but return immediately
        # instead of blocking for Ctrl-C.
        from repro.service.aio import DSRAsyncServer

        monkeypatch.setattr(DSRAsyncServer, "wait", lambda self: None)
        code = main(
            [
                "serve", "amazon", "--scale", "0.1", "--partitions", "2",
                "--async", "--rate-limit-qps", "100",
                "--high-watermark", "8", "--low-watermark", "2",
            ]
        )
        assert code == 0
        output = capsys.readouterr().out
        assert "serving (async, binary frames)" in output
        assert "watermarks 2/8" in output
        assert "rate limit 100" in output
        assert "serving metrics" in output

    def test_serve_async_with_tcp_executor(self, capsys, monkeypatch):
        from repro.service.aio import DSRAsyncServer

        monkeypatch.setattr(DSRAsyncServer, "wait", lambda self: None)
        code = main(
            [
                "serve", "amazon", "--scale", "0.1", "--partitions", "2",
                "--async", "--executor", "tcp",
            ]
        )
        assert code == 0
        assert "serving (async" in capsys.readouterr().out

    def test_worker_host_command(self, capsys, monkeypatch):
        from repro.cluster.tcp import WorkerHost

        # serve_forever blocks until Ctrl-C; the wiring is what we test.
        monkeypatch.setattr(WorkerHost, "serve_forever", lambda self: None)
        assert main(["worker-host", "--port", "0"]) == 0
        output = capsys.readouterr().out
        assert "worker host listening on 127.0.0.1:" in output

    def test_worker_hosts_flag_requires_tcp_executor(self, capsys):
        from repro.api.config import ConfigError

        with pytest.raises(ConfigError, match="executor='tcp'"):
            main(
                [
                    "serve", "amazon", "--scale", "0.1",
                    "--worker-hosts", "127.0.0.1:9000",
                ]
            )
