"""Round-trip and validation tests for the service wire protocol."""

import io

import pytest

from repro.api import ReachQuery
from repro.service.protocol import (
    BINARY_FRAMING_MIN_VERSION,
    OversizedFrameError,
    pack_frame,
    recv_message_versioned,
    unpack_frame,
    MIN_PROTOCOL_VERSION,
    PROTOCOL_VERSION,
    ErrorResponse,
    MetricsRequest,
    MetricsResponse,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    SnapshotRequest,
    SnapshotResponse,
    StatsRequest,
    StatsResponse,
    UpdateRequest,
    UpdateResponse,
    decode,
    dumps,
    encode,
    loads,
    loads_versioned,
    recv_message,
    send_message,
    wire_version,
)

ALL_MESSAGES = [
    QueryRequest((1, 2, 3), (9, 8), direction="forward", use_cache=False),
    UpdateRequest("insert-edge", 4, 7),
    UpdateRequest("insert-vertex", partition_id=2),
    UpdateRequest("flush"),
    StatsRequest(),
    SnapshotRequest(),
    MetricsRequest(),
    QueryResponse(pairs=((1, 9), (2, 8)), cached=True, direction="backward",
                  num_batches=2, latency_seconds=0.25, messages_sent=3,
                  bytes_sent=512),
    QueryResponse(pairs=((1, 9),),
                  trace={"attrs": {"representation": "bits"},
                         "spans": [{"name": "step1", "seconds": 0.001,
                                    "offset_seconds": 0.0, "attrs": {}}]}),
    MetricsResponse(text="# TYPE dsr_queries_total counter\n"
                         "dsr_queries_total 3\n"),
    UpdateResponse(op="delete-edge", structural_change=True,
                   affected_partitions=(2, 0), latency_seconds=0.01),
    StatsResponse(stats={"queries": 5, "cache_hit_rate": 0.6}),
    SnapshotResponse(snapshot={"messages_sent": 2, "rounds": 1}),
    ErrorResponse(error="ValueError", message="unknown vertex 42"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", ALL_MESSAGES, ids=lambda m: type(m).__name__)
    def test_json_line_round_trip(self, message):
        assert loads(dumps(message)) == message

    @pytest.mark.parametrize("message", ALL_MESSAGES, ids=lambda m: type(m).__name__)
    def test_dict_round_trip(self, message):
        assert decode(encode(message)) == message

    def test_stream_framing_preserves_order(self):
        stream = io.StringIO()
        for message in ALL_MESSAGES:
            send_message(stream, message)
        stream.seek(0)
        received = []
        while True:
            message = recv_message(stream)
            if message is None:
                break
            received.append(message)
        assert received == ALL_MESSAGES


class TestNormalisation:
    def test_query_request_coerces_to_tuples(self):
        request = QueryRequest([3, 1], [2])
        assert request.sources == (3, 1)
        assert request.targets == (2,)

    def test_query_response_sorts_pairs(self):
        response = QueryResponse(pairs=[(5, 1), (2, 9), (2, 3)])
        assert response.pairs == ((2, 3), (2, 9), (5, 1))
        assert response.pair_set == {(5, 1), (2, 9), (2, 3)}

    def test_update_response_sorts_partitions(self):
        assert UpdateResponse(op="flush", affected_partitions=(3, 1)).affected_partitions == (1, 3)


class TestValidation:
    def test_bad_direction_rejected(self):
        with pytest.raises(ProtocolError):
            QueryRequest((1,), (2,), direction="sideways")

    def test_bad_update_op_rejected(self):
        with pytest.raises(ProtocolError):
            UpdateRequest("truncate")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            decode({"kind": "teleport"})

    def test_untagged_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode({"sources": [1], "targets": [2]})

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError):
            loads("{not json")

    def test_encode_rejects_foreign_objects(self):
        with pytest.raises(ProtocolError):
            encode(object())

    def test_decode_ignores_unknown_fields(self):
        payload = encode(StatsRequest())
        payload["extra"] = "future-field"
        assert decode(payload) == StatsRequest()


class TestVersioning:
    def test_encode_stamps_current_version(self):
        payload = encode(StatsRequest())
        assert payload["version"] == PROTOCOL_VERSION

    @pytest.mark.parametrize("foreign", [1, PROTOCOL_VERSION + 1, "2", None])
    def test_mismatched_version_rejected(self, foreign):
        payload = encode(StatsRequest())
        payload["version"] = foreign
        with pytest.raises(ProtocolError, match="version"):
            decode(payload)

    @pytest.mark.parametrize(
        "supported", list(range(MIN_PROTOCOL_VERSION, PROTOCOL_VERSION + 1))
    )
    def test_supported_version_range_accepted(self, supported):
        payload = encode(StatsRequest())
        payload["version"] = supported
        assert decode(payload) == StatsRequest()

    def test_missing_version_treated_as_current(self):
        payload = encode(StatsRequest())
        del payload["version"]
        assert decode(payload) == StatsRequest()

    def test_version_survives_the_wire(self):
        import json

        frame = json.loads(dumps(QueryRequest((1,), (2,))))
        assert frame["version"] == PROTOCOL_VERSION


class TestVersionNegotiation:
    """Version-3 additions degrade cleanly when talking to version-2 peers."""

    def test_encode_for_v2_strips_query_trace(self):
        payload = encode(QueryRequest((1,), (2,), trace=True), version=2)
        assert "trace" not in payload
        assert payload["version"] == 2
        # The stripped frame still decodes — trace falls back to its default.
        assert decode(payload) == QueryRequest((1,), (2,), trace=False)

    def test_encode_for_v2_strips_response_trace(self):
        response = QueryResponse(
            pairs=((1, 2),), trace={"attrs": {}, "spans": []}
        )
        payload = encode(response, version=2)
        assert "trace" not in payload
        assert decode(payload) == QueryResponse(pairs=((1, 2),), trace=None)

    def test_trace_round_trips_at_current_version(self):
        trace = {"attrs": {"representation": "bits"}, "spans": []}
        request = QueryRequest((1,), (2,), trace=True)
        response = QueryResponse(pairs=(), trace=trace)
        assert loads(dumps(request)).trace is True
        assert loads(dumps(response)).trace == trace

    def test_v2_frame_from_old_client_decodes(self):
        # An old client has no idea trace exists: its frames omit the field
        # and claim version 2.  The server must accept them unchanged.
        payload = encode(QueryRequest((3,), (4,), direction="forward"))
        payload.pop("trace")
        payload["version"] = 2
        decoded = decode(payload)
        assert decoded == QueryRequest((3,), (4,), direction="forward")
        assert decoded.trace is False

    def test_metrics_kind_requires_v3(self):
        with pytest.raises(ProtocolError, match="metrics"):
            encode(MetricsRequest(), version=2)
        payload = encode(MetricsRequest())
        payload["version"] = 2
        with pytest.raises(ProtocolError, match="metrics"):
            decode(payload)

    def test_encode_rejects_unsupported_target_version(self):
        with pytest.raises(ProtocolError, match="version"):
            encode(StatsRequest(), version=1)
        with pytest.raises(ProtocolError, match="version"):
            encode(StatsRequest(), version=PROTOCOL_VERSION + 1)

    def test_loads_versioned_reports_wire_version(self):
        message, version = loads_versioned(
            dumps(StatsRequest(), version=MIN_PROTOCOL_VERSION)
        )
        assert message == StatsRequest()
        assert version == MIN_PROTOCOL_VERSION
        assert wire_version(encode(StatsRequest())) == PROTOCOL_VERSION


class TestVersionFourTenants:
    """Version-4 adds the fleet's tenant label; older peers never see it."""

    def test_encode_for_v3_strips_tenant(self):
        payload = encode(QueryRequest((1,), (2,), tenant="analytics"), version=3)
        assert "tenant" not in payload
        assert payload["version"] == 3
        # The stripped frame still decodes — tenant falls back to None.
        assert decode(payload) == QueryRequest((1,), (2,), tenant=None)

    def test_tenant_round_trips_at_current_version(self):
        request = QueryRequest((1,), (2,), tenant="analytics")
        decoded = loads(dumps(request))
        assert decoded.tenant == "analytics"
        assert decoded == request

    def test_old_client_frame_without_tenant_decodes(self):
        payload = encode(QueryRequest((3,), (4,)))
        payload.pop("tenant")
        payload["version"] = 3
        decoded = decode(payload)
        assert decoded.tenant is None

    def test_from_query_carries_the_tenant(self):
        query = ReachQuery((1,), (2,), tenant="crm")
        assert QueryRequest.from_query(query).tenant == "crm"


class TestReachQueryBridge:
    """QueryRequest is a thin serialisation of the API's ReachQuery."""

    def test_query_request_is_a_reach_query(self):
        request = QueryRequest((1, 2), (3,), direction="forward")
        assert isinstance(request, ReachQuery)
        assert request.sources == (1, 2)
        assert request.max_batch_pairs is None

    def test_plain_reach_query_encodes_as_query_message(self):
        query = ReachQuery((1, 2), (3,), use_cache=False, max_batch_pairs=16)
        decoded = decode(encode(query))
        assert isinstance(decoded, QueryRequest)
        assert decoded.sources == query.sources
        assert decoded.targets == query.targets
        assert decoded.use_cache is False
        assert decoded.max_batch_pairs == 16

    def test_from_query_round_trip(self):
        query = ReachQuery((4,), (5,), direction="backward")
        request = QueryRequest.from_query(query)
        assert request.direction == "backward"
        assert QueryRequest.from_query(request) is request

    def test_batch_budget_travels_the_wire(self):
        request = QueryRequest((1,), (2,), max_batch_pairs=64)
        assert loads(dumps(request)).max_batch_pairs == 64


class TestBinaryFraming:
    """Version-5 adds length-prefixed binary frames for the async front door."""

    @pytest.mark.parametrize("message", ALL_MESSAGES, ids=lambda m: type(m).__name__)
    def test_frame_round_trip(self, message):
        frame = pack_frame(message)
        unpacked = unpack_frame(frame)
        assert unpacked is not None
        decoded, version, request_id, consumed = unpacked
        assert decoded == message
        assert version == PROTOCOL_VERSION
        assert request_id is None
        assert consumed == len(frame)

    def test_request_id_round_trips(self):
        frame = pack_frame(StatsRequest(), request_id=42)
        message, _version, request_id, _consumed = unpack_frame(frame)
        assert message == StatsRequest()
        assert request_id == 42

    def test_partial_buffer_returns_none(self):
        frame = pack_frame(StatsRequest())
        for cut in (0, 1, 4, len(frame) - 1):
            assert unpack_frame(frame[:cut]) is None

    def test_back_to_back_frames_consume_sequentially(self):
        messages = [StatsRequest(), SnapshotRequest(), MetricsRequest()]
        buffer = bytearray()
        for request_id, message in enumerate(messages):
            buffer.extend(pack_frame(message, request_id=request_id))
        received = []
        while buffer:
            message, _version, request_id, consumed = unpack_frame(buffer)
            received.append((request_id, message))
            del buffer[:consumed]
        assert received == list(enumerate(messages))

    def test_oversized_frame_rejected_from_header_alone(self):
        frame = pack_frame(StatsRequest())
        header = frame[:5]  # u32 length + u8 version, no body attached
        import struct

        huge = struct.pack(">I", 64 * 1024 * 1024) + header[4:5]
        with pytest.raises(OversizedFrameError, match="exceeds"):
            unpack_frame(huge, max_frame_bytes=1024)

    def test_pack_frame_refuses_pre_framing_versions(self):
        with pytest.raises(ProtocolError, match="version"):
            pack_frame(StatsRequest(), version=BINARY_FRAMING_MIN_VERSION - 1)

    def test_pack_frame_sender_side_cap(self):
        # Senders can enforce the receiver's cap before the frame hits the
        # wire, so an oversized reply becomes a typed error instead of a
        # frame the peer is guaranteed to reject.
        message = QueryResponse(pairs=tuple((i, i + 1) for i in range(64)))
        frame = pack_frame(message)
        # The cap covers the version byte + body (len - u32 prefix):
        # exactly at the cap still packs, one byte under it raises.
        assert pack_frame(message, max_frame_bytes=len(frame) - 4) == frame
        with pytest.raises(OversizedFrameError, match="exceeds"):
            pack_frame(message, max_frame_bytes=len(frame) - 5)

    def test_frame_with_old_version_byte_rejected(self):
        import struct

        body = b'{"kind": "stats"}'
        frame = struct.pack(">IB", 1 + len(body), 4) + body
        with pytest.raises(ProtocolError, match="version"):
            unpack_frame(frame)

    def test_frame_with_garbage_body_rejected(self):
        import struct

        body = b"\x00\x01 not json"
        frame = struct.pack(">IB", 1 + len(body), PROTOCOL_VERSION) + body
        with pytest.raises(ProtocolError):
            unpack_frame(frame)

    def test_binary_frames_never_start_with_a_brace(self):
        # The async server autodetects newline-JSON peers by a leading '{';
        # the frame cap keeps the length's first byte 0x00 so the two
        # framings can never be confused.
        for message in ALL_MESSAGES:
            assert pack_frame(message)[0] == 0x00

    def test_line_cap_raises_oversized(self):
        stream = io.StringIO(dumps(StatsRequest()) * 100)
        with pytest.raises(OversizedFrameError, match="line"):
            recv_message_versioned(stream, max_bytes=64)

    def test_line_under_cap_still_decodes(self):
        stream = io.StringIO(dumps(StatsRequest()))
        message, version = recv_message_versioned(stream, max_bytes=65536)
        assert message == StatsRequest()
        assert version == PROTOCOL_VERSION


class TestVersionFiveNegotiation:
    """v5 frames carry every gated field; packing for old peers strips them."""

    def test_v5_frame_keeps_trace_and_tenant(self):
        request = QueryRequest((1,), (2,), trace=True, tenant="analytics")
        message, version, _id, _consumed = unpack_frame(pack_frame(request))
        assert version == PROTOCOL_VERSION
        assert message.trace is True
        assert message.tenant == "analytics"

    @pytest.mark.parametrize(
        "version,keeps_trace,keeps_tenant",
        [(2, False, False), (3, True, False), (4, True, True)],
    )
    def test_json_encode_strips_gated_fields_per_version(
        self, version, keeps_trace, keeps_tenant
    ):
        request = QueryRequest((1,), (2,), trace=True, tenant="analytics")
        payload = encode(request, version=version)
        assert payload["version"] == version
        assert ("trace" in payload) == keeps_trace
        assert ("tenant" in payload) == keeps_tenant

    def test_response_trace_stripped_for_v2_peer(self):
        response = QueryResponse(pairs=((1, 2),), trace={"attrs": {}, "spans": []})
        payload = encode(response, version=2)
        assert "trace" not in payload
        assert decode(payload) == QueryResponse(pairs=((1, 2),), trace=None)
