"""Round-trip and validation tests for the service wire protocol."""

import io

import pytest

from repro.service.protocol import (
    ErrorResponse,
    ProtocolError,
    QueryRequest,
    QueryResponse,
    SnapshotRequest,
    SnapshotResponse,
    StatsRequest,
    StatsResponse,
    UpdateRequest,
    UpdateResponse,
    decode,
    dumps,
    encode,
    loads,
    recv_message,
    send_message,
)

ALL_MESSAGES = [
    QueryRequest((1, 2, 3), (9, 8), direction="forward", use_cache=False),
    UpdateRequest("insert-edge", 4, 7),
    UpdateRequest("insert-vertex", partition_id=2),
    UpdateRequest("flush"),
    StatsRequest(),
    SnapshotRequest(),
    QueryResponse(pairs=((1, 9), (2, 8)), cached=True, direction="backward",
                  num_batches=2, latency_seconds=0.25, messages_sent=3,
                  bytes_sent=512),
    UpdateResponse(op="delete-edge", structural_change=True,
                   affected_partitions=(2, 0), latency_seconds=0.01),
    StatsResponse(stats={"queries": 5, "cache_hit_rate": 0.6}),
    SnapshotResponse(snapshot={"messages_sent": 2, "rounds": 1}),
    ErrorResponse(error="ValueError", message="unknown vertex 42"),
]


class TestRoundTrip:
    @pytest.mark.parametrize("message", ALL_MESSAGES, ids=lambda m: type(m).__name__)
    def test_json_line_round_trip(self, message):
        assert loads(dumps(message)) == message

    @pytest.mark.parametrize("message", ALL_MESSAGES, ids=lambda m: type(m).__name__)
    def test_dict_round_trip(self, message):
        assert decode(encode(message)) == message

    def test_stream_framing_preserves_order(self):
        stream = io.StringIO()
        for message in ALL_MESSAGES:
            send_message(stream, message)
        stream.seek(0)
        received = []
        while True:
            message = recv_message(stream)
            if message is None:
                break
            received.append(message)
        assert received == ALL_MESSAGES


class TestNormalisation:
    def test_query_request_coerces_to_tuples(self):
        request = QueryRequest([3, 1], [2])
        assert request.sources == (3, 1)
        assert request.targets == (2,)

    def test_query_response_sorts_pairs(self):
        response = QueryResponse(pairs=[(5, 1), (2, 9), (2, 3)])
        assert response.pairs == ((2, 3), (2, 9), (5, 1))
        assert response.pair_set == {(5, 1), (2, 9), (2, 3)}

    def test_update_response_sorts_partitions(self):
        assert UpdateResponse(op="flush", affected_partitions=(3, 1)).affected_partitions == (1, 3)


class TestValidation:
    def test_bad_direction_rejected(self):
        with pytest.raises(ProtocolError):
            QueryRequest((1,), (2,), direction="sideways")

    def test_bad_update_op_rejected(self):
        with pytest.raises(ProtocolError):
            UpdateRequest("truncate")

    def test_unknown_kind_rejected(self):
        with pytest.raises(ProtocolError):
            decode({"kind": "teleport"})

    def test_untagged_payload_rejected(self):
        with pytest.raises(ProtocolError):
            decode({"sources": [1], "targets": [2]})

    def test_invalid_json_rejected(self):
        with pytest.raises(ProtocolError):
            loads("{not json")

    def test_encode_rejects_foreign_objects(self):
        with pytest.raises(ProtocolError):
            encode(object())

    def test_decode_ignores_unknown_fields(self):
        payload = encode(StatsRequest())
        payload["extra"] = "future-field"
        assert decode(payload) == StatsRequest()
