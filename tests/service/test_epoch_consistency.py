"""Service-level epoch consistency: lock-free reads, epoch-tagged caching.

A service over an ``epoch_flush="background"`` engine must (a) answer queries
while maintenance is mid-flush — reads never block on the write path — and
(b) never serve a cache entry computed at a different epoch than the one the
request observes.

The engine's executor defaults to ``serial`` but honours
``REPRO_TEST_EXECUTORS`` (first entry), so the CI ``process-executor`` job
runs this whole module against real sharded process workers.
"""

import os
import threading

import pytest

from repro.api import DSRConfig, open_engine

SERVICE_EXECUTOR = os.environ.get("REPRO_TEST_EXECUTORS", "serial").split(",")[0].strip()
from repro.graph.digraph import DiGraph
from repro.service.protocol import QueryRequest, UpdateRequest
from repro.service.server import DSRService


def _bridge_graph():
    graph = DiGraph.from_edges(
        [(1, 10), (1, 11), (1, 12), (10, 20), (11, 21), (12, 22)]
    )
    graph.add_vertex(0)
    return graph


FULL_ANSWER = {(0, 20), (0, 21), (0, 22)}


def _background_service(**kwargs):
    engine = open_engine(
        _bridge_graph(),
        DSRConfig(
            num_partitions=3,
            partitioner="hash",
            epoch_flush="background",
            executor=SERVICE_EXECUTOR,
        ),
    )
    return DSRService(engine, num_workers=2, **kwargs)


def _query():
    return QueryRequest(sources=(0,), targets=(20, 21, 22))


class TestLockFreeReads:
    def test_query_mid_flush_returns_published_epoch_without_blocking(self):
        with _background_service() as service:
            assert service.handle(_query()).pair_set == set()
            entered = threading.Event()
            hold = threading.Event()

            def stall(state):
                entered.set()
                assert hold.wait(timeout=10)

            service.engine.maintainer._before_publish = stall
            try:
                service.handle(UpdateRequest("insert-edge", 0, 1))
                assert entered.wait(timeout=10), "background flush never started"

                # Maintenance is mid-flush and *stalled*; the query must
                # still complete (against epoch 0) — this deadlocks if the
                # read path ever waits on the flush.
                response = service.handle(_query())
                assert response.epoch == 0
                assert response.pair_set == set()
            finally:
                hold.set()
                service.engine.maintainer._before_publish = None
            assert service.engine.wait_for_maintenance(timeout=10)
            response = service.handle(_query())
            assert response.epoch == 1
            assert response.pair_set == FULL_ANSWER

    def test_hammer_queries_against_updates_are_never_torn(self):
        with _background_service() as service:
            errors = []
            stop = threading.Event()

            def querier():
                try:
                    while not stop.is_set():
                        response = service.handle(_query())
                        assert response.pair_set in (set(), FULL_ANSWER), (
                            f"torn answer at epoch {response.epoch}: "
                            f"{response.pair_set}"
                        )
                except BaseException as exc:  # pragma: no cover - failure path
                    errors.append(exc)

            threads = [threading.Thread(target=querier) for _ in range(3)]
            for thread in threads:
                thread.start()
            try:
                for _ in range(5):
                    service.handle(UpdateRequest("insert-edge", 0, 1))
                    service.engine.wait_for_maintenance(timeout=10)
                    service.handle(UpdateRequest("delete-edge", 0, 1))
                    service.engine.wait_for_maintenance(timeout=10)
            finally:
                stop.set()
                for thread in threads:
                    thread.join(timeout=10)
            assert not errors, errors[0]

    def test_stats_expose_epoch_and_mode(self):
        with _background_service() as service:
            stats = service.stats()
            assert stats["epoch"] == 0
            assert stats["epoch_flush"] == "background"
            assert stats["executor"] == SERVICE_EXECUTOR
            assert stats["maintenance_error"] is None


class TestEpochTaggedCache:
    def test_cache_entry_survives_update_until_swap(self):
        """Background mode: the published epoch stays valid until the swap,
        so (unlike inline mode) a structural update must NOT clear the cache
        — the stale-but-consistent epoch-N answer is still the right answer
        for epoch N."""
        with _background_service() as service:
            entered = threading.Event()
            hold = threading.Event()
            service.handle(_query())  # prime the cache at epoch 0
            assert len(service.cache) == 1

            def stall(state):
                entered.set()
                assert hold.wait(timeout=10)

            service.engine.maintainer._before_publish = stall
            try:
                service.handle(UpdateRequest("insert-edge", 0, 1))
                assert entered.wait(timeout=10)
                # Mid-flush: the epoch-0 entry is still served (a hit).
                response = service.handle(_query())
                assert response.cached is True
                assert response.pair_set == set()
            finally:
                hold.set()
                service.engine.maintainer._before_publish = None
            assert service.engine.wait_for_maintenance(timeout=10)

    def test_stale_epoch_entry_rejected_after_swap(self):
        with _background_service() as service:
            service.handle(_query())  # cached at epoch 0
            service.handle(UpdateRequest("insert-edge", 0, 1))
            assert service.engine.wait_for_maintenance(timeout=10)
            response = service.handle(_query())
            # Epoch 1 lookup must never serve the epoch-0 entry.
            assert response.cached is False
            assert response.pair_set == FULL_ANSWER
            assert response.epoch == 1
            # And the fresh answer is re-cached under epoch 1.
            assert service.handle(_query()).cached is True

    def test_cache_put_after_swap_cannot_be_served(self):
        """A result computed at epoch N but stored after the swap to N+1 is
        version-checked away at lookup time."""
        with _background_service() as service:
            cache = service.cache
            cache.put((0,), (20, 21, 22), set(), epoch=0)  # stale epoch-0 entry
            service.handle(UpdateRequest("insert-edge", 0, 1))
            assert service.engine.wait_for_maintenance(timeout=10)
            response = service.handle(_query())
            assert response.cached is False
            assert response.pair_set == FULL_ANSWER

    def test_epoch_rejections_counted(self):
        with _background_service() as service:
            service.cache.put((0,), (20, 21, 22), set(), epoch=99)
            response = service.handle(_query())
            assert response.cached is False
            assert service.cache.stats.epoch_rejections >= 1


class TestConcurrentSubmission:
    def test_submitted_futures_resolve_consistently_during_maintenance(self):
        with _background_service() as service:
            futures = []
            for i in range(10):
                futures.append(service.submit(_query()))
                if i == 4:
                    service.submit(UpdateRequest("insert-edge", 0, 1))
            answers = {frozenset(f.result(timeout=10).pair_set) for f in futures}
            assert answers <= {frozenset(), frozenset(FULL_ANSWER)}
            assert service.engine.wait_for_maintenance(timeout=10)


class TestInlineModeUnchanged:
    """The default inline mode keeps its eager invalidation contract."""

    def test_inline_service_still_clears_cache_on_structural_update(self):
        engine = open_engine(
            _bridge_graph(), DSRConfig(num_partitions=3, partitioner="hash")
        )
        with DSRService(engine, num_workers=1) as service:
            service.handle(_query())
            assert len(service.cache) == 1
            service.handle(UpdateRequest("insert-edge", 0, 1))
            assert len(service.cache) == 0
            assert service.handle(_query()).pair_set == FULL_ANSWER


class TestAttachValidation:
    def test_bad_invalidate_on_rejected(self):
        engine = open_engine(
            _bridge_graph(), DSRConfig(num_partitions=2, partitioner="hash")
        )
        from repro.service.cache import ResultCache

        cache = ResultCache()
        with pytest.raises(ValueError, match="invalidate_on"):
            cache.attach(engine.maintainer, invalidate_on="sometimes")
