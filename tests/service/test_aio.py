"""Tests for the asyncio binary front door (protocol v5).

Covers the v5 framing end to end (multiplexed binary clients), the
newline-JSON compatibility path for v2/v3/v4 peers (version negotiation
with gated-field stripping in both directions), oversized-frame handling,
watermark backpressure, per-tenant rate limiting and tenant SLO stats.
"""

import asyncio
import json
import socket
import struct
import time

import pytest

from repro.core.engine import DSREngine
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.service import (
    DSRAsyncClient,
    DSRAsyncServer,
    DSRClient,
    DSRService,
    ErrorResponse,
    QueryRequest,
    QueryResponse,
    StatsResponse,
    TokenBucket,
)
from repro.service.protocol import (
    PROTOCOL_VERSION,
    StatsRequest,
    encode,
    pack_frame,
    unpack_frame,
)


@pytest.fixture
def graph():
    return generators.social_graph(200, avg_degree=5, seed=3)


@pytest.fixture
def service(graph):
    engine = DSREngine(graph, num_partitions=3, local_index="msbfs", seed=2)
    service = DSRService(engine, num_workers=3)
    yield service
    service.close()


class TestTokenBucket:
    def test_burst_exhausts_then_denies(self):
        bucket = TokenBucket(rate=1000.0, burst=3)
        assert [bucket.try_acquire() for _ in range(4)] == [True, True, True, False]

    def test_refill_restores_tokens(self):
        bucket = TokenBucket(rate=200.0, burst=1)
        assert bucket.try_acquire()
        assert not bucket.try_acquire()
        time.sleep(0.05)  # 200/s refills one token in 5ms
        assert bucket.try_acquire()

    def test_rejects_non_positive_parameters(self):
        with pytest.raises(ValueError):
            TokenBucket(rate=0, burst=1)
        with pytest.raises(ValueError):
            TokenBucket(rate=1, burst=-1)


class TestBinaryTransport:
    def test_query_update_stats_round_trip(self, graph, service):
        vertices = sorted(graph.vertices())

        async def drive(host, port):
            async with DSRAsyncClient(host, port) as client:
                first = await client.query(vertices[:6], vertices[60:66])
                update = await client.update("insert-edge", vertices[0], vertices[-1])
                second = await client.query(
                    vertices[:6], vertices[60:66], use_cache=False
                )
                stats = await client.stats()
                return first, update, second, stats

        with DSRAsyncServer(service) as server:
            host, port = server.address
            first, update, second, stats = asyncio.run(drive(host, port))
        assert first.pair_set == reachable_pairs(graph, vertices[:6], vertices[60:66])
        assert update.op == "insert-edge"
        # The re-query reflects the applied update (graph mutated in place).
        assert second.pair_set == reachable_pairs(graph, vertices[:6], vertices[60:66])
        assert isinstance(stats, StatsResponse)
        assert stats.stats["async"]["connections"] == 1
        assert stats.stats["async"]["high_watermark"] >= 1

    def test_multiplexed_requests_resolve_by_id(self, graph, service):
        vertices = sorted(graph.vertices())
        queries = [
            (vertices[i : i + 4], vertices[70 + 2 * i : 75 + 2 * i])
            for i in range(24)
        ]

        async def drive(host, port):
            async with DSRAsyncClient(host, port) as client:
                return await asyncio.gather(
                    *(
                        client.query(sources, targets, use_cache=False)
                        for sources, targets in queries
                    )
                )

        with DSRAsyncServer(service) as server:
            host, port = server.address
            responses = asyncio.run(drive(host, port))
        # 24 requests in flight on ONE connection; every response must have
        # been matched to its own request id.
        for (sources, targets), response in zip(queries, responses):
            assert response.pair_set == reachable_pairs(graph, sources, targets)

    def test_many_concurrent_connections(self, graph, service):
        vertices = sorted(graph.vertices())

        async def one_client(host, port, offset):
            sources = vertices[offset : offset + 3]
            targets = vertices[90 + offset : 94 + offset]
            async with DSRAsyncClient(host, port) as client:
                response = await client.query(sources, targets)
                return response.pair_set == reachable_pairs(graph, sources, targets)

        async def drive(host, port):
            return await asyncio.gather(
                *(one_client(host, port, i) for i in range(16))
            )

        with DSRAsyncServer(service) as server:
            host, port = server.address
            results = asyncio.run(drive(host, port))
            # All connections came and went; the gauge is back to zero.
            assert server.metrics.counter_value("dsr_conn_active") == 0.0
        assert all(results)


def _compat_roundtrip(address, payloads):
    """Send newline-JSON payloads over a raw socket; return reply payloads."""
    with socket.create_connection(address, timeout=10.0) as raw:
        stream = raw.makefile("rw", encoding="utf-8", newline="\n")
        for payload in payloads:
            stream.write(json.dumps(payload) + "\n")
        stream.flush()
        return [json.loads(stream.readline()) for _ in payloads]


class TestCompatPath:
    def test_newline_json_client_still_works(self, graph, service):
        vertices = sorted(graph.vertices())
        with DSRAsyncServer(service) as server:
            host, port = server.address
            with DSRClient(host, port) as client:
                response = client.query(vertices[:6], vertices[60:66])
                assert response.pair_set == reachable_pairs(
                    graph, vertices[:6], vertices[60:66]
                )
                assert client.query(vertices[:6], vertices[60:66]).cached
                assert client.stats().stats["queries"] == 2

    @pytest.mark.parametrize("version", [2, 3, 4])
    def test_old_version_peers_answered_at_their_version(
        self, graph, service, version
    ):
        """Satellite: v2/v3/v4 peers against the async compat path."""
        vertices = sorted(graph.vertices())
        request = QueryRequest(
            tuple(vertices[:4]), tuple(vertices[50:54]),
            trace=True, tenant="legacy",
        )
        payload = encode(request, version=version)
        # encode() already strips what the old peer cannot say...
        assert ("trace" in payload) == (version >= 3)
        assert ("tenant" in payload) == (version >= 4)
        with DSRAsyncServer(service) as server:
            (reply,) = _compat_roundtrip(server.address, [payload])
        # ...and the server answers at the version the peer spoke, stripping
        # response-side gated fields the same way.
        assert reply["kind"] == "query-result"
        assert reply["version"] == version
        assert ("trace" in reply) == (version >= 3)
        expected = reachable_pairs(graph, vertices[:4], vertices[50:54])
        assert {tuple(pair) for pair in reply["pairs"]} == expected

    def test_v5_line_peer_gets_trace_and_tenant_echo(self, graph, service):
        vertices = sorted(graph.vertices())
        payload = encode(
            QueryRequest(
                tuple(vertices[:3]), tuple(vertices[40:43]),
                trace=True, tenant="crm",
            )
        )
        with DSRAsyncServer(service) as server:
            (reply,) = _compat_roundtrip(server.address, [payload])
            assert server.tenant_percentile("crm", 50) >= 0.0
        assert reply["version"] == PROTOCOL_VERSION
        assert reply["trace"] is not None  # traced at v5, never stripped

    def test_compat_replies_stay_in_request_order(self, service):
        # Old clients read responses strictly in request order; the async
        # server must not let a fast request overtake a slow one.
        payloads = [encode(QueryRequest((0, 1), (2, 3)))]
        payloads += [{"kind": "stats", "version": 2}, {"kind": "snapshot"}] * 3
        with DSRAsyncServer(service) as server:
            replies = _compat_roundtrip(server.address, payloads)
        kinds = [reply["kind"] for reply in replies]
        assert kinds == ["query-result"] + ["stats-result", "snapshot-result"] * 3

    def test_pipelined_cache_hit_cannot_overtake_miss(self, graph, service):
        # Two pipelined legacy requests in ONE read batch, where the first
        # misses the cache (goes to a worker) and the second hits it: the
        # hit's synchronous fast path must not flush its reply ahead of the
        # miss, or a positional client silently mismatches every answer.
        vertices = sorted(graph.vertices())
        hot = QueryRequest(tuple(vertices[:4]), tuple(vertices[40:44]))
        cold = QueryRequest(
            tuple(vertices[:4]), tuple(vertices[50:54]), use_cache=False
        )
        cold_pairs = reachable_pairs(graph, vertices[:4], vertices[50:54])
        hot_pairs = reachable_pairs(graph, vertices[:4], vertices[40:44])
        assert cold_pairs != hot_pairs  # else a swap would be invisible
        with DSRAsyncServer(service) as server:
            _compat_roundtrip(server.address, [encode(hot)])  # prime the cache
            with socket.create_connection(server.address, timeout=10.0) as raw:
                batch = "".join(
                    json.dumps(encode(request)) + "\n" for request in (cold, hot)
                )
                raw.sendall(batch.encode("utf-8"))
                stream = raw.makefile("r", encoding="utf-8", newline="\n")
                cold_reply, hot_reply = (
                    json.loads(stream.readline()) for _ in range(2)
                )
        assert {tuple(pair) for pair in cold_reply["pairs"]} == cold_pairs
        assert {tuple(pair) for pair in hot_reply["pairs"]} == hot_pairs


class TestFramingErrors:
    def test_oversized_binary_frame_errors_and_closes(self, service):
        with DSRAsyncServer(service, max_frame_bytes=1024) as server:
            with socket.create_connection(server.address, timeout=10.0) as raw:
                raw.sendall(struct.pack(">IB", 64 * 1024 * 1024, PROTOCOL_VERSION))
                buffer = bytearray()
                while True:
                    try:
                        chunk = raw.recv(65536)
                    except ConnectionResetError:
                        break
                    if not chunk:
                        break
                    buffer.extend(chunk)
                message, _version, _id, _consumed = unpack_frame(buffer)
                assert isinstance(message, ErrorResponse)
                assert message.error == "OversizedFrameError"

    def test_oversized_line_errors_and_closes(self, service):
        with DSRAsyncServer(service, max_line_bytes=512) as server:
            with socket.create_connection(server.address, timeout=10.0) as raw:
                # Looks like a JSON line ('{' first) but never ends.
                raw.sendall(b"{" + b"a" * 4096)
                stream = raw.makefile("r", encoding="utf-8", newline="\n")
                try:
                    reply = json.loads(stream.readline())
                except (ConnectionResetError, ValueError):
                    return  # peer reset before the error flushed: also closed
                assert reply["kind"] == "error"
                assert reply["error"] == "OversizedFrameError"

    def test_oversized_reply_typed_error_connection_lives(self, graph, service):
        # A reply bigger than the frame cap must come back as a typed error
        # on the matching request id — not as an uncapped frame the client's
        # reader rejects, killing every pending request on the connection.
        vertices = sorted(graph.vertices())

        async def drive(host, port):
            async with DSRAsyncClient(host, port) as client:
                big = await client.query(
                    vertices[:40], vertices[60:160], use_cache=False
                )
                small = await client.query(
                    vertices[:1], vertices[50:51], use_cache=False
                )
                return big, small

        with DSRAsyncServer(service, max_frame_bytes=2048) as server:
            big, small = asyncio.run(drive(*server.address))
        assert isinstance(big, ErrorResponse)
        assert big.error == "OversizedReplyError"
        # The connection survived and still serves fitting replies.
        assert not isinstance(small, ErrorResponse)
        assert small.pair_set == reachable_pairs(
            graph, vertices[:1], vertices[50:51]
        )

    def test_response_message_as_request_rejected_connection_lives(self, service):
        async def drive(host, port):
            async with DSRAsyncClient(host, port) as client:
                rejected = await client.request(
                    QueryResponse(pairs=((1, 2),))
                )
                alive = await client.stats()
                return rejected, alive

        with DSRAsyncServer(service) as server:
            host, port = server.address
            rejected, alive = asyncio.run(drive(host, port))
        assert isinstance(rejected, ErrorResponse)
        assert rejected.error == "ProtocolError"
        assert isinstance(alive, StatsResponse)


class TestBackpressure:
    def test_watermarks_pause_reads_and_recover(self, graph):
        engine = DSREngine(graph, num_partitions=3, local_index="msbfs", seed=2)
        service = DSRService(engine, num_workers=1, max_queue_depth=4)
        vertices = sorted(graph.vertices())
        big = (vertices[:40], vertices[60:160])

        async def drive(host, port):
            async with DSRAsyncClient(host, port, timeout=120.0) as client:
                responses = await asyncio.gather(
                    *(
                        client.query(*big, use_cache=False)
                        for _ in range(32)
                    )
                )
                after = await client.query(vertices[:5], vertices[50:55])
                return responses, after

        try:
            with DSRAsyncServer(service, high_watermark=3, low_watermark=1) as server:
                host, port = server.address
                responses, after = asyncio.run(drive(host, port))
                stats = server.stats()["async"]
            expected = reachable_pairs(graph, *big)
            served = [r for r in responses if not isinstance(r, ErrorResponse)]
            shed = [r for r in responses if isinstance(r, ErrorResponse)]
            assert served, "backpressure must not starve every request"
            for response in served:
                assert response.pair_set == expected
            # Overload is graceful: anything not served was shed with a typed
            # error, not dropped or crashed.
            for response in shed:
                assert response.error == "ServiceOverloadedError"
            assert stats["paused_total"] >= 1, "reads never paused under flood"
            assert stats["shed_total"] == len(shed)
            assert stats["reads_paused"] is False  # drained ⇒ resumed
            # The connection survived the flood and serves again.
            assert after.pair_set == reachable_pairs(
                graph, vertices[:5], vertices[50:55]
            )
        finally:
            service.close()

    def test_watermark_validation(self, service):
        with pytest.raises(ValueError):
            DSRAsyncServer(service, high_watermark=2, low_watermark=5)


class TestRateLimiting:
    def test_tenant_over_budget_throttled_others_unaffected(self, graph, service):
        vertices = sorted(graph.vertices())

        async def drive(host, port):
            async with DSRAsyncClient(host, port) as client:
                noisy = [
                    await client.query(
                        vertices[:3], vertices[40:43], tenant="noisy"
                    )
                    for _ in range(8)
                ]
                quiet = await client.query(
                    vertices[:3], vertices[40:43], tenant="quiet"
                )
                return noisy, quiet

        server = DSRAsyncServer(service, rate_limit_qps=5.0, rate_limit_burst=2)
        with server:
            host, port = server.address
            noisy, quiet = asyncio.run(drive(host, port))
            stats = server.stats()["async"]
        throttled = [r for r in noisy if isinstance(r, ErrorResponse)]
        assert throttled, "8 instant requests at burst 2 must throttle"
        assert all(r.error == "RateLimitedError" for r in throttled)
        assert not isinstance(quiet, ErrorResponse)  # buckets are per tenant
        assert stats["tenants"]["noisy"]["throttled"] == len(throttled)
        assert stats["tenants"].get("quiet", {}).get("throttled", 0) == 0

    def test_burst_defaults_to_qps(self, service):
        server = DSRAsyncServer(service, rate_limit_qps=7.0)
        assert server.rate_limit_burst == 7.0


class TestTenantSLOs:
    def test_per_tenant_percentiles_in_stats(self, graph, service):
        vertices = sorted(graph.vertices())

        async def drive(host, port):
            async with DSRAsyncClient(host, port) as client:
                for _ in range(5):
                    await client.query(
                        vertices[:4], vertices[44:48],
                        use_cache=False, tenant="crm",
                    )
                await client.stats()  # non-query: must NOT hit the histogram

        with DSRAsyncServer(service) as server:
            host, port = server.address
            asyncio.run(drive(host, port))
            crm = server.stats()["async"]["tenants"]["crm"]
            assert crm["requests"] == 5
            assert crm["p50_ms"] >= 0.0
            assert crm["p99_ms"] >= crm["p50_ms"]
            assert server.tenant_percentile("crm", 99) >= server.tenant_percentile(
                "crm", 50
            )


class TestLoopFastPath:
    """Cache hits are answered on the event loop, not the worker pool."""

    def test_handle_nowait_hits_only(self, graph, service):
        vertices = sorted(graph.vertices())
        request = QueryRequest(tuple(vertices[:4]), tuple(vertices[40:44]))
        # Cold cache: the fast path must decline and leave metrics alone.
        assert service.handle_nowait(request) is None
        assert service.metrics.count("queries") == 0
        full = service.handle(request)
        fast = service.handle_nowait(request)
        assert isinstance(fast, QueryResponse) and fast.cached
        assert set(fast.pairs) == set(full.pairs)
        # Metrically identical to a handle() cache hit.
        assert service.metrics.count("cache_hits") == 1
        assert service.metrics.count("queries") == 2

    def test_handle_nowait_declines_blocking_shapes(self, graph, service):
        vertices = sorted(graph.vertices())
        request = QueryRequest(tuple(vertices[:4]), tuple(vertices[40:44]))
        service.handle(request)
        uncached = QueryRequest(
            tuple(vertices[:4]), tuple(vertices[40:44]), use_cache=False
        )
        traced = QueryRequest(
            tuple(vertices[:4]), tuple(vertices[40:44]), trace=True
        )
        assert service.handle_nowait(uncached) is None
        assert service.handle_nowait(traced) is None
        assert service.handle_nowait(StatsRequest()) is None

    def test_cached_queries_never_enter_the_admission_queue(self, graph, service):
        vertices = sorted(graph.vertices())
        request = QueryRequest(tuple(vertices[:6]), tuple(vertices[30:36]))
        server = DSRAsyncServer(service)
        server.start_in_thread()
        try:
            async def drive():
                client = DSRAsyncClient(*server.address)
                await client.connect()
                try:
                    first = await client.query(vertices[:6], vertices[30:36])
                    again = await client.query(vertices[:6], vertices[30:36])
                    return first, again
                finally:
                    await client.close()

            first, again = asyncio.run(drive())
            assert not first.cached and again.cached
            assert set(again.pairs) == set(first.pairs)
            assert service.metrics.count("cache_hits") == 1
        finally:
            server.stop_from_thread()
