"""Races between background shm epoch publishes and concurrent queries.

The shared-memory publish path adds a new hazard class on top of the plain
epoch swap: segments are created, hydrated into worker processes and retired
while queries are in flight on other threads.  These tests hammer that
window — 16 query threads against an ``executor="processes"`` engine whose
epochs flip in the background — and assert the two invariants the design
promises:

* **all-or-nothing answers** — every query sees exactly one published epoch
  (never a half-hydrated shard mix), observable on a bridge graph whose
  answer flips wholesale on one edge;
* **monotonic epochs** — no thread ever observes the epoch counter move
  backwards, even while retired segments are being unlinked underneath
  still-running queries.

The ``maintainer._before_publish`` seam stages the nastiest interleaving
deterministically: queries running while a fully-built epoch (segments
written, workers hydrated) sits unpublished on the swap threshold.
"""

import threading

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.cluster.shm import shm_available
from repro.fleet import ReplicaFleet
from repro.graph.digraph import DiGraph

pytestmark = pytest.mark.skipif(
    not shm_available(), reason="shared memory unavailable or disabled"
)

QUERY_THREADS = 16


def _bridge_graph():
    """Answer flips all-or-nothing on the single ``0 → 1`` bridge edge."""
    graph = DiGraph.from_edges(
        [(1, 10), (1, 11), (1, 12), (1, 13), (10, 20), (11, 21), (12, 22), (13, 23)]
    )
    graph.add_vertex(0)
    return graph


BRIDGE_QUERY = ReachQuery((0,), (20, 21, 22, 23))
FULL_ANSWER = {(0, 20), (0, 21), (0, 22), (0, 23)}


def _hammer(run_query, rounds, assert_monotonic=True):
    """Run QUERY_THREADS query loops while ``rounds()`` mutates the index.

    Returns the list of failures collected from the query threads; each
    thread asserts all-or-nothing answers and (against a single engine,
    where it is well-defined) monotonic epochs.  A fleet interleaves
    replicas that flush at different moments, so its per-thread epoch
    sequence legitimately zig-zags — pass ``assert_monotonic=False``.
    """
    errors = []
    stop = threading.Event()

    def querier():
        last_epoch = -1
        try:
            while not stop.is_set():
                result = run_query()
                assert result.pairs in (set(), FULL_ANSWER), (
                    f"torn answer at epoch {result.epoch}: {result.pairs}"
                )
                if assert_monotonic:
                    assert result.epoch >= last_epoch, (
                        f"epoch went backwards: {last_epoch} -> {result.epoch}"
                    )
                last_epoch = result.epoch
        except BaseException as exc:  # pragma: no cover - failure path
            errors.append(exc)

    threads = [threading.Thread(target=querier) for _ in range(QUERY_THREADS)]
    for thread in threads:
        thread.start()
    try:
        rounds()
    finally:
        stop.set()
        for thread in threads:
            thread.join(timeout=30)
    return errors


class TestEngineShmEpochRace:
    def _engine(self):
        return open_engine(
            _bridge_graph(),
            DSRConfig(
                num_partitions=3,
                partitioner="hash",
                executor="processes",
                epoch_flush="background",
            ),
        )

    def test_background_shm_flushes_vs_sixteen_query_threads(self):
        engine = self._engine()
        try:

            def rounds():
                for _ in range(5):
                    engine.insert_edge(0, 1)
                    engine.wait_for_maintenance(timeout=30)
                    engine.delete_edge(0, 1)
                    engine.wait_for_maintenance(timeout=30)

            errors = _hammer(lambda: engine.run(BRIDGE_QUERY), rounds)
            assert not errors, errors[0]
            assert engine.maintainer.background_flush_error is None
            # The retain window held throughout: only the live epochs' shm
            # segments remain, the older ones were unlinked mid-race.
            ledger = engine.index._shm_ledger
            if ledger is not None:
                held = {
                    int(name.split("_e")[1].split("_")[0])
                    for name in ledger.segment_names()
                }
                assert held <= {engine.epoch, engine.epoch - 1}
        finally:
            engine.close()

    def test_queries_on_swap_threshold_see_exactly_one_epoch(self):
        """Freeze a built-but-unpublished epoch (segments written, workers
        hydrated) and query through the window from all threads."""
        engine = self._engine()
        try:
            entered = threading.Event()
            hold = threading.Event()

            def stall(state):
                entered.set()
                assert hold.wait(timeout=30), "flush released too late"

            engine.maintainer._before_publish = stall

            def rounds():
                engine.insert_edge(0, 1)
                assert entered.wait(timeout=30), "background flush never started"
                # Epoch 1's segments exist and rank workers are hydrated,
                # but the swap has not happened: every answer must still be
                # the epoch-0 one.
                for _ in range(50):
                    result = engine.run(BRIDGE_QUERY)
                    assert result.epoch == 0
                    assert result.pairs == set()
                hold.set()
                engine.maintainer._before_publish = None
                assert engine.wait_for_maintenance(timeout=30)
                assert engine.run(BRIDGE_QUERY).pairs == FULL_ANSWER

            errors = _hammer(lambda: engine.run(BRIDGE_QUERY), rounds)
            assert not errors, errors[0]
        finally:
            engine.maintainer._before_publish = None
            engine.close()


class TestFleetShmEpochRace:
    def test_fleet_routes_through_background_shm_flushes(self):
        """Same hammer through a ReplicaFleet: routed reads race fan-out
        writes while every replica republishes its shm segments."""
        fleet = ReplicaFleet.from_config(
            _bridge_graph(),
            DSRConfig(
                num_partitions=3,
                replicas=2,
                executor="processes",
                fleet=True,
            ),
        )
        try:

            def rounds():
                for _ in range(3):
                    fleet.insert_edge(0, 1)
                    fleet.flush_updates()
                    fleet.delete_edge(0, 1)
                    fleet.flush_updates()

            errors = _hammer(
                lambda: fleet.run(BRIDGE_QUERY), rounds, assert_monotonic=False
            )
            assert not errors, errors[0]
        finally:
            fleet.close()
