"""Cache invalidation under incremental updates (the staleness contract).

Cached query answers must be dropped/refreshed after ``insert_edge``,
``delete_edge`` and ``delete_vertex`` — including updates that are only
*batched* in the :class:`IncrementalMaintainer` and not yet flushed — while
provably harmless updates leave the cache warm.
"""

import pytest

from repro.core.engine import DSREngine
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.service import DSRService, QueryRequest
from repro.service.cache import ResultCache


def build_service(**kwargs):
    graph = generators.social_graph(220, avg_degree=5, seed=9)
    engine = DSREngine(graph, num_partitions=3, local_index="msbfs", seed=4)
    engine.build_index()
    return graph, engine, DSRService(engine, num_workers=2, **kwargs)


@pytest.fixture
def served():
    graph, engine, service = build_service()
    yield graph, engine, service
    service.close()


def warm(service, sources, targets):
    """Query twice; the second answer must come from the cache."""
    request = QueryRequest(tuple(sources), tuple(targets))
    first = service.handle(request)
    second = service.handle(request)
    assert second.cached
    assert first.pair_set == second.pair_set
    return request, first.pair_set


class TestInvalidationOnUpdates:
    def test_insert_edge_drops_cached_result(self, served):
        graph, engine, service = served
        vertices = sorted(graph.vertices())
        sources, targets = vertices[:6], vertices[100:106]
        request, before = warm(service, sources, targets)

        # Connect a source to a target it could not reach: the new edge is a
        # structural insertion and the cached answer must change.
        missing = [
            (s, t) for s in sources for t in targets if (s, t) not in before
        ]
        assert missing, "query already fully connected; pick a different fixture"
        u, v = missing[0]
        result = engine.insert_edge(u, v)
        assert result.structural_change
        response = service.handle(request)
        assert not response.cached
        assert (u, v) in response.pair_set
        assert response.pair_set == reachable_pairs(graph, sources, targets)

    def test_delete_edge_drops_cached_result(self, served):
        graph, engine, service = served
        vertices = sorted(graph.vertices())
        sources, targets = vertices[:6], vertices[100:106]
        request, before = warm(service, sources, targets)

        engine.delete_edge(*next(iter(graph.edges())))
        response = service.handle(request)
        assert not response.cached
        assert response.pair_set == reachable_pairs(graph, sources, targets)

    def test_delete_vertex_drops_cached_result(self, served):
        graph, engine, service = served
        vertices = sorted(graph.vertices())
        sources, targets = vertices[:6], vertices[100:106]
        request, _ = warm(service, sources, targets)

        # Delete a vertex that is in neither S nor T; paths through it may
        # still vanish, so the cached entry must go regardless.
        victim = vertices[50]
        engine.delete_vertex(victim)
        response = service.handle(request)
        assert not response.cached
        assert response.pair_set == reachable_pairs(graph, sources, targets)

    def test_batched_updates_invalidate_before_flush(self, served):
        """Updates queued in the maintainer (no flush yet) already invalidate."""
        graph, engine, service = served
        vertices = sorted(graph.vertices())
        sources, targets = vertices[:5], vertices[80:85]
        request, _ = warm(service, sources, targets)

        engine.insert_edge(sources[1], targets[1])
        engine.insert_edge(sources[2], targets[2])
        engine.delete_edge(*next(iter(graph.edges())))
        assert engine.has_pending_updates  # still batched, nothing flushed
        assert len(service.cache) == 0

        # The service query triggers the engine's own flush-before-query and
        # returns the post-update answer.
        response = service.handle(request)
        assert not response.cached
        assert not engine.has_pending_updates
        assert response.pair_set == reachable_pairs(graph, sources, targets)
        assert {(sources[1], targets[1]), (sources[2], targets[2])} <= response.pair_set

    def test_explicit_flush_of_dirty_maintainer_clears_late_attached_cache(self):
        """A cache attached after updates were queued is cleared at flush."""
        graph, engine, _service = build_service()
        _service.close()
        # Queue guaranteed dirt first: a brand-new cut edge marks both
        # incident partitions dirty.
        new_edge = next(
            (u, v)
            for u in sorted(graph.vertices())
            for v in sorted(graph.vertices())
            if u != v
            and not graph.has_edge(u, v)
            and engine.partitioning.partition_of(u)
            != engine.partitioning.partition_of(v)
        )
        result = engine.insert_edge(*new_edge)
        assert result.structural_change
        late_cache = ResultCache(capacity=8)
        late_cache.attach(engine.maintainer)
        late_cache.put([1], [2], {(1, 2)})
        engine.flush_updates()
        assert len(late_cache) == 0
        assert late_cache.stats.flushes_observed == 1
        late_cache.detach()


class TestPreciseNonInvalidation:
    def test_duplicate_edge_insert_keeps_cache(self, served):
        graph, engine, service = served
        vertices = sorted(graph.vertices())
        sources, targets = vertices[:6], vertices[100:106]
        request, _ = warm(service, sources, targets)

        engine.insert_edge(*next(iter(graph.edges())))  # already present
        assert service.handle(request).cached

    def test_missing_edge_delete_keeps_cache(self, served):
        graph, engine, service = served
        vertices = sorted(graph.vertices())
        sources, targets = vertices[:6], vertices[100:106]
        request, _ = warm(service, sources, targets)

        engine.delete_edge(vertices[0], vertices[0])  # no self-loop exists
        assert service.handle(request).cached

    def test_isolated_vertex_insert_keeps_cache(self, served):
        graph, engine, service = served
        vertices = sorted(graph.vertices())
        sources, targets = vertices[:6], vertices[100:106]
        request, _ = warm(service, sources, targets)

        engine.insert_vertex()
        assert service.handle(request).cached

    def test_same_scc_edge_insert_keeps_cache(self, served):
        graph, engine, service = served
        # Find a *new* intra-partition edge whose endpoints already sit in the
        # same SCC of the compound graph: the paper's provably-neutral
        # insertion (Section 3.3.3).
        candidate = None
        for pid, compound in engine.index.compound_graphs.items():
            components = compound.reachability.vertex_to_component
            by_component = {}
            for vertex in engine.partitioning.vertices_of(pid):
                by_component.setdefault(components.get(vertex), []).append(vertex)
            for component, members in by_component.items():
                if component is None or len(members) < 2:
                    continue
                for u in members:
                    for w in members:
                        if u != w and not graph.has_edge(u, w):
                            candidate = (u, w)
                            break
                    if candidate:
                        break
                if candidate:
                    break
            if candidate:
                break
        if candidate is None:
            pytest.skip("graph has no same-SCC non-edge inside one partition")
        u, w = candidate
        vertices = sorted(graph.vertices())
        request, _ = warm(service, vertices[:6], vertices[100:106])

        result = engine.insert_edge(u, w)
        assert not result.structural_change
        response = service.handle(request)
        assert response.cached
        assert response.pair_set == reachable_pairs(
            graph, vertices[:6], vertices[100:106]
        )
