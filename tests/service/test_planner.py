"""Tests for the service query planner (direction choice + batching)."""

import pytest

from repro.api import ReachQuery
from repro.core.engine import DSREngine
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.service.planner import QueryPlanner


@pytest.fixture(scope="module")
def engine():
    graph = generators.web_graph(140, avg_degree=5, seed=11)
    engine = DSREngine(
        graph, num_partitions=4, local_index="msbfs", seed=2, enable_backward=True
    )
    engine.build_index()
    return engine


@pytest.fixture(scope="module")
def forward_only_engine():
    graph = generators.random_digraph(60, 160, seed=5)
    engine = DSREngine(graph, num_partitions=3, seed=1)
    engine.build_index()
    return engine


class TestDirectionChoice:
    def test_explicit_direction_is_honoured(self, engine):
        planner = QueryPlanner(engine)
        assert planner.plan([0, 1], [2], direction="forward").direction == "forward"
        assert planner.plan([0, 1], [2], direction="backward").direction == "backward"

    def test_auto_prefers_cheaper_side(self, engine):
        planner = QueryPlanner(engine)
        vertices = sorted(engine.graph.vertices())
        few_targets = planner.plan(vertices[:40], vertices[40:42])
        assert few_targets.direction == "backward"
        few_sources = planner.plan(vertices[:2], vertices[2:42])
        assert few_sources.direction == "forward"

    def test_auto_without_backward_index_stays_forward(self, forward_only_engine):
        planner = QueryPlanner(forward_only_engine)
        vertices = sorted(forward_only_engine.graph.vertices())
        plan = planner.plan(vertices[:30], vertices[30:32])
        assert plan.direction == "forward"
        assert "not available" in plan.reason

    def test_invalid_direction_rejected(self, engine):
        with pytest.raises(ValueError):
            QueryPlanner(engine).plan([0], [1], direction="sideways")


class TestBatching:
    def test_small_query_is_one_batch(self, engine):
        plan = QueryPlanner(engine, max_batch_pairs=4096).plan([0, 1], [2, 3])
        assert plan.num_batches == 1
        assert plan.split_axis == "none"

    def test_large_query_is_split_within_budget(self, engine):
        vertices = sorted(engine.graph.vertices())
        sources, targets = vertices[:60], vertices[60:80]
        planner = QueryPlanner(engine, max_batch_pairs=200)
        plan = planner.plan(sources, targets)
        assert plan.num_batches > 1
        assert plan.split_axis == "sources"
        covered = []
        for batch_sources, batch_targets in plan.batches:
            assert len(batch_sources) * len(batch_targets) <= 200
            assert set(batch_targets) == set(targets)
            covered.extend(batch_sources)
        assert sorted(covered) == sorted(set(sources))

    def test_split_prefers_larger_side(self, engine):
        vertices = sorted(engine.graph.vertices())
        planner = QueryPlanner(engine, max_batch_pairs=100)
        plan = planner.plan(vertices[:5], vertices[5:80])
        assert plan.split_axis == "targets"
        for batch_sources, _ in plan.batches:
            assert set(batch_sources) == set(vertices[:5])

    def test_empty_query_yields_empty_plan(self, engine):
        plan = QueryPlanner(engine).plan([], [1, 2])
        assert plan.is_empty
        assert plan.estimated_cost == 0.0

    def test_invalid_budget_rejected(self, engine):
        with pytest.raises(ValueError):
            QueryPlanner(engine, max_batch_pairs=0)


class TestCostModel:
    """The cost model reads CSR degree stats without ever building snapshots."""

    def test_plan_never_builds_a_csr_snapshot(self, engine):
        # Planning runs outside the service's engine lock, so triggering a
        # snapshot build there would race concurrent updates (the build
        # iterates the live adjacency dicts).  The planner must only *peek*.
        engine.graph._invalidate_csr()
        assert engine.graph.csr_if_cached() is None
        QueryPlanner(engine).plan([0, 1, 2], [3, 4])
        assert engine.graph.csr_if_cached() is None

    def test_cached_snapshot_and_counter_fallback_agree(self, engine):
        planner = QueryPlanner(engine)
        engine.graph._invalidate_csr()
        fallback = planner._edge_factor()
        engine.graph.csr()  # warm the snapshot (as a lock holder would)
        from_snapshot = planner._edge_factor()
        assert from_snapshot == pytest.approx(fallback)

    def test_edge_factor_scales_traversal_side_only(self, engine):
        planner = QueryPlanner(engine)
        factor = planner._edge_factor()
        assert factor > 1.0
        # Doubling the traversal-side cardinality must raise the cost by
        # more than doubling the collection side (the edge factor applies
        # to the traversal term only).
        base = planner.estimate_cost(10, 10, "forward")
        more_sources = planner.estimate_cost(20, 10, "forward")
        more_targets = planner.estimate_cost(10, 20, "forward")
        assert more_sources - base > more_targets - base


class TestReachQueryPlanning:
    """The planner accepts the unified query object directly."""

    def test_plan_accepts_reach_query(self, engine):
        planner = QueryPlanner(engine)
        plan = planner.plan(ReachQuery((0, 1), (2,), direction="forward"))
        assert plan.direction == "forward"
        assert plan.num_batches == 1

    def test_query_level_batch_budget_overrides_planner_default(self, engine):
        vertices = sorted(engine.graph.vertices())
        planner = QueryPlanner(engine, max_batch_pairs=4096)
        query = ReachQuery(
            tuple(vertices[:40]), tuple(vertices[40:60]), max_batch_pairs=100
        )
        plan = planner.plan(query)
        assert plan.num_batches > 1
        for batch_sources, batch_targets in plan.batches:
            assert len(batch_sources) * len(batch_targets) <= 100

    def test_reach_query_plus_targets_rejected(self, engine):
        with pytest.raises(TypeError):
            QueryPlanner(engine).plan(ReachQuery((0,), (1,)), [2])

    def test_empty_reach_query_yields_empty_plan(self, engine):
        assert QueryPlanner(engine).plan(ReachQuery((), (1,))).is_empty


class TestSplitCorrectness:
    """A split plan unions back to exactly the unsplit answer."""

    @pytest.mark.parametrize("direction", ["forward", "backward"])
    def test_batched_execution_matches_direct_query(self, engine, direction):
        vertices = sorted(engine.graph.vertices())
        sources, targets = vertices[:30], vertices[100:130]
        planner = QueryPlanner(engine, max_batch_pairs=150)
        plan = planner.plan(sources, targets, direction=direction)
        assert plan.num_batches > 1
        merged = planner.merge(
            [
                engine.query(batch_sources, batch_targets, direction=plan.direction)
                for batch_sources, batch_targets in plan.batches
            ]
        )
        assert merged == reachable_pairs(engine.graph, sources, targets)
        assert merged == engine.query(sources, targets, direction=direction)
