"""Tests for the concurrent serving layer and the socket transport."""

import threading

import pytest

from repro.core.engine import DSREngine
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.service import (
    DSRClient,
    DSRService,
    DSRSocketServer,
    ErrorResponse,
    QueryRequest,
    QueryResponse,
    ServiceOverloadedError,
    SnapshotRequest,
    StatsRequest,
    UpdateRequest,
)
from repro.service.server import ServiceMetrics


@pytest.fixture
def graph():
    return generators.social_graph(200, avg_degree=5, seed=3)


@pytest.fixture
def service(graph):
    engine = DSREngine(graph, num_partitions=3, local_index="msbfs", seed=2)
    service = DSRService(engine, num_workers=3)
    yield service
    service.close()


class TestQueryServing:
    def test_answers_match_direct_engine(self, graph, service):
        vertices = sorted(graph.vertices())
        response = service.handle(QueryRequest(tuple(vertices[:7]), tuple(vertices[60:66])))
        assert isinstance(response, QueryResponse)
        assert response.pair_set == reachable_pairs(graph, vertices[:7], vertices[60:66])

    def test_unbuilt_engine_is_built_by_the_service(self, graph):
        engine = DSREngine(graph, num_partitions=3, seed=2)
        assert not engine.is_built
        service = DSRService(engine, num_workers=1)
        assert engine.is_built
        service.close()

    def test_cache_hit_skips_engine_and_counts(self, graph, service):
        vertices = sorted(graph.vertices())
        request = QueryRequest(tuple(vertices[:5]), tuple(vertices[50:55]))
        first = service.handle(request)
        second = service.handle(request)
        assert not first.cached and second.cached
        assert second.pair_set == first.pair_set
        assert service.metrics.count("cache_hits") == 1

    def test_use_cache_false_bypasses_cache(self, graph, service):
        vertices = sorted(graph.vertices())
        request = QueryRequest(
            tuple(vertices[:5]), tuple(vertices[50:55]), use_cache=False
        )
        assert not service.handle(request).cached
        assert not service.handle(request).cached
        assert service.metrics.count("cache_hits") == 0

    def test_empty_query_short_circuits(self, service):
        response = service.handle(QueryRequest((), (1,)))
        assert response.pairs == () and response.num_batches == 0

    def test_unknown_vertex_becomes_error_response(self, service):
        response = service.handle(QueryRequest((10**9,), (0,)))
        assert isinstance(response, ErrorResponse)
        assert response.error == "ValueError"
        assert service.metrics.count("errors") == 1

    def test_split_query_matches_direct_engine(self, graph):
        engine = DSREngine(graph, num_partitions=3, seed=2)
        service = DSRService(engine, num_workers=2, max_batch_pairs=50)
        vertices = sorted(graph.vertices())
        sources, targets = vertices[:20], vertices[100:120]
        response = service.handle(QueryRequest(tuple(sources), tuple(targets)))
        assert response.num_batches > 1
        assert response.pair_set == reachable_pairs(graph, sources, targets)
        service.close()


class TestConcurrentServing:
    def test_parallel_mixed_workload_is_exact(self, graph, service):
        vertices = sorted(graph.vertices())
        queries = [
            (vertices[i : i + 5], vertices[80 + i : 86 + i]) for i in range(12)
        ]
        futures = [
            service.submit(QueryRequest(tuple(sources), tuple(targets)))
            for sources, targets in queries
            for _ in range(3)
        ]
        # Interleave structural updates while queries are in flight.
        service.submit(UpdateRequest("insert-edge", vertices[0], vertices[-1])).result()
        service.submit(
            UpdateRequest("delete-edge", *next(iter(graph.edges())))
        ).result()
        for future in futures:
            assert not isinstance(future.result(), ErrorResponse)
        # Post-quiescence answers are exact against the updated graph.
        for sources, targets in queries:
            response = service.submit(
                QueryRequest(tuple(sources), tuple(targets))
            ).result()
            assert response.pair_set == reachable_pairs(graph, sources, targets)

    def test_many_threads_share_the_service(self, graph, service):
        vertices = sorted(graph.vertices())
        errors = []

        def client(offset):
            sources = vertices[offset : offset + 4]
            targets = vertices[120 + offset : 124 + offset]
            for _ in range(5):
                response = service.submit(
                    QueryRequest(tuple(sources), tuple(targets))
                ).result()
                if response.pair_set != reachable_pairs(graph, sources, targets):
                    errors.append(offset)

        threads = [threading.Thread(target=client, args=(i,)) for i in range(6)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert not errors

    def test_admission_queue_rejects_when_full(self, graph):
        engine = DSREngine(graph, num_partitions=3, seed=2)
        service = DSRService(engine, num_workers=1, max_queue_depth=1)
        vertices = sorted(graph.vertices())
        big = QueryRequest(tuple(vertices[:50]), tuple(vertices[50:150]), use_cache=False)
        accepted = []
        with pytest.raises(ServiceOverloadedError):
            for _ in range(200):  # the single slow worker cannot keep up
                accepted.append(service.submit(big))
        assert service.metrics.count("rejected") >= 1
        for future in accepted:
            future.result()
        service.close()

    def test_submit_after_close_rejected(self, graph):
        engine = DSREngine(graph, num_partitions=3, seed=2)
        service = DSRService(engine, num_workers=1)
        service.close()
        with pytest.raises(RuntimeError):
            service.submit(StatsRequest())


class TestStatsAndMetrics:
    def test_stats_response_shape(self, graph, service):
        vertices = sorted(graph.vertices())
        request = QueryRequest(tuple(vertices[:4]), tuple(vertices[40:44]))
        service.handle(request)
        service.handle(request)
        stats = service.handle(StatsRequest()).stats
        assert stats["queries"] == 2
        assert stats["cache_hit_rate"] == 0.5
        # Cache hits are accounted under their own kind: only the first call
        # actually ran the engine, the second was answered from the cache.
        assert stats["query_count"] == 1
        assert stats["query_cached_count"] == 1
        assert stats["query_p50_ms"] >= 0.0
        assert stats["query_cached_p50_ms"] >= 0.0
        assert stats["cache"]["hits"] == 1
        assert stats["workers"] == 3
        assert stats["maintenance"]["epoch"] == stats["epoch"]

    def test_snapshot_reports_cluster_counters(self, graph, service):
        vertices = sorted(graph.vertices())
        service.handle(
            QueryRequest(tuple(vertices[:4]), tuple(vertices[40:44]), use_cache=False)
        )
        snapshot = service.handle(SnapshotRequest()).snapshot
        assert {"messages_sent", "bytes_sent", "rounds"} <= set(snapshot)

    def test_percentiles_are_order_statistics(self):
        metrics = ServiceMetrics()
        for value in [0.01, 0.02, 0.03, 0.04, 0.10]:
            metrics.record("query", value)
        assert metrics.percentile("query", 50) == 0.03
        assert metrics.percentile("query", 99) == 0.10
        assert metrics.percentile("unseen", 50) == 0.0

    def test_update_metrics_recorded(self, graph, service):
        vertices = sorted(graph.vertices())
        service.handle(UpdateRequest("insert-edge", vertices[0], vertices[-1]))
        service.handle(UpdateRequest("flush"))
        assert service.metrics.count("updates") == 2
        assert service.stats()["update_count"] == 2


class TestSocketTransport:
    def test_end_to_end_over_socket(self, graph, service):
        vertices = sorted(graph.vertices())
        with DSRSocketServer(service) as server:
            host, port = server.address
            with DSRClient(host, port) as client:
                response = client.query(vertices[:6], vertices[60:66])
                assert response.pair_set == reachable_pairs(
                    graph, vertices[:6], vertices[60:66]
                )
                assert client.query(vertices[:6], vertices[60:66]).cached
                update = client.insert_edge(vertices[0], vertices[-1])
                assert update.op == "insert-edge"
                after = client.query(vertices[:6], vertices[60:66])
                assert not after.cached
                assert after.pair_set == reachable_pairs(
                    graph, vertices[:6], vertices[60:66]
                )
                stats = client.stats().stats
                assert stats["queries"] == 3
                assert client.snapshot().snapshot["rounds"] >= 0
            assert server.requests_served == 6

    def test_multiple_concurrent_clients(self, graph, service):
        vertices = sorted(graph.vertices())
        with DSRSocketServer(service) as server:
            host, port = server.address
            errors = []

            def run_client(offset):
                sources = vertices[offset : offset + 3]
                targets = vertices[90 + offset : 94 + offset]
                with DSRClient(host, port) as client:
                    for _ in range(4):
                        response = client.query(sources, targets)
                        if response.pair_set != reachable_pairs(graph, sources, targets):
                            errors.append(offset)

            threads = [threading.Thread(target=run_client, args=(i,)) for i in range(5)]
            for thread in threads:
                thread.start()
            for thread in threads:
                thread.join()
            assert not errors
            assert server.requests_served == 20

    def test_max_requests_stops_server(self, graph, service):
        server = DSRSocketServer(service, max_requests=2).start()
        host, port = server.address
        with DSRClient(host, port) as client:
            client.stats()
            client.stats()
        assert server.wait(timeout=5.0)
        assert server.requests_served == 2

    def test_malformed_frame_gets_error_response(self, graph, service):
        import json
        import socket as socket_module

        with DSRSocketServer(service) as server:
            host, port = server.address
            raw = socket_module.create_connection((host, port), timeout=5.0)
            stream = raw.makefile("rw", encoding="utf-8", newline="\n")
            stream.write(json.dumps({"kind": "teleport"}) + "\n")
            stream.flush()
            line = stream.readline()
            payload = json.loads(line)
            assert payload["kind"] == "error"
            # A response message sent as a request is rejected, connection lives.
            stream.write(json.dumps({"kind": "error", "error": "x", "message": "y"}) + "\n")
            stream.flush()
            payload = json.loads(stream.readline())
            assert payload["kind"] == "error"
            raw.close()


class TestLineCap:
    """Satellite fix: the line reader must not buffer unbounded input."""

    def test_oversized_line_gets_error_then_close(self, graph, service):
        import json
        import socket as socket_module

        with DSRSocketServer(service, max_line_bytes=1024) as server:
            host, port = server.address
            with socket_module.create_connection((host, port), timeout=5.0) as raw:
                raw.sendall(b"{" + b"x" * 8192 + b"\n")
                stream = raw.makefile("r", encoding="utf-8", newline="\n")
                try:
                    payload = json.loads(stream.readline())
                except (ConnectionResetError, ValueError):
                    return  # reset before the error flushed: also closed
                assert payload["kind"] == "error"
                assert payload["error"] == "OversizedFrameError"
                # The connection is closed afterwards: EOF or a reset, but
                # never another successful exchange.
                try:
                    assert stream.readline() == ""
                except ConnectionResetError:
                    pass

    def test_normal_lines_unaffected_by_cap(self, graph, service):
        vertices = sorted(graph.vertices())
        with DSRSocketServer(service, max_line_bytes=65536) as server:
            host, port = server.address
            with DSRClient(host, port) as client:
                response = client.query(vertices[:4], vertices[40:44])
                assert not isinstance(response, ErrorResponse)


class TestClientTimeoutsAndRetries:
    """Satellite fix: DSRClient gets socket timeouts + bounded reconnects."""

    def test_request_timeout_raises_not_hangs(self):
        import socket as socket_module

        listener = socket_module.socket()
        listener.bind(("127.0.0.1", 0))
        listener.listen(1)
        host, port = listener.getsockname()
        try:
            client = DSRClient(host, port, request_timeout=0.3, retries=0)
            started = __import__("time").perf_counter()
            with pytest.raises(TimeoutError):
                client.stats()  # accepted but never answered
            elapsed = __import__("time").perf_counter() - started
            assert elapsed < 5.0
            client.close()
        finally:
            listener.close()

    def test_connect_timeout_to_dead_port_raises(self):
        import socket as socket_module

        probe = socket_module.socket()
        probe.bind(("127.0.0.1", 0))
        dead_port = probe.getsockname()[1]
        probe.close()
        with pytest.raises(ConnectionError):
            # The constructor connects eagerly, so refusal surfaces here.
            DSRClient(
                "127.0.0.1", dead_port,
                connect_timeout=0.3, retries=1, retry_backoff_seconds=0.01,
            )

    def test_reconnects_across_server_restart(self, graph, service):
        vertices = sorted(graph.vertices())
        first = DSRSocketServer(service).start()
        host, port = first.address
        client = DSRClient(host, port, retries=3, retry_backoff_seconds=0.05)
        try:
            response = client.query(vertices[:4], vertices[40:44])
            assert not isinstance(response, ErrorResponse)
            first.stop()
            # Same port, fresh server: the client's next request sees a dead
            # socket, reconnects within its retry budget and succeeds.
            second = DSRSocketServer(service, host=host, port=port).start()
            try:
                after = client.query(vertices[:4], vertices[44:48])
                assert not isinstance(after, ErrorResponse)
                assert client.reconnects >= 1  # the restart forced a retry
            finally:
                second.stop()
        finally:
            client.close()
            first.stop()


class TestPipelinedRequests:
    """A client may write several requests before reading any reply.

    Regression guard: the serve loop must use split read/write streams — a
    combined ``makefile("rw")`` TextIOWrapper discards its read-ahead buffer
    on every write (sockets are not seekable), silently dropping whatever
    pipelined requests it had already pulled off the wire.
    """

    def test_pipelined_requests_all_answered(self, graph, service):
        import json
        import socket as socket_module

        from repro.service.protocol import QueryRequest, dumps

        vertices = sorted(graph.vertices())
        line = (
            dumps(QueryRequest(tuple(vertices[:3]), tuple(vertices[40:43]))) + "\n"
        ).encode("utf-8")
        with DSRSocketServer(service) as server:
            host, port = server.address
            with socket_module.create_connection((host, port), timeout=10.0) as raw:
                reader = raw.makefile("r", encoding="utf-8", newline="\n")
                # Burst of 4 up front, then lock-step: one new request per
                # reply received — the pattern that exposed the data loss.
                raw.sendall(line * 4)
                for received in range(1, 11):
                    payload = json.loads(reader.readline())
                    assert payload["kind"] == "query-result", payload
                    if received <= 6:
                        raw.sendall(line)
        assert server.requests_served == 10
