"""Unit tests for the LRU + TTL result cache."""

import pytest

from repro.service.cache import ResultCache


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestLookupSemantics:
    def test_miss_then_hit(self):
        cache = ResultCache(capacity=4)
        assert cache.get([1, 2], [3]) is None
        cache.put([1, 2], [3], {(1, 3)})
        assert cache.get([1, 2], [3]) == {(1, 3)}
        assert cache.stats.hits == 1 and cache.stats.misses == 1

    def test_key_is_order_insensitive(self):
        cache = ResultCache(capacity=4)
        cache.put([2, 1], [4, 3], {(1, 3)})
        assert cache.get([1, 2], [3, 4]) == {(1, 3)}

    def test_returned_set_is_a_copy(self):
        cache = ResultCache(capacity=4)
        cache.put([1], [2], {(1, 2)})
        result = cache.get([1], [2])
        result.add((9, 9))
        assert cache.get([1], [2]) == {(1, 2)}

    def test_sources_and_targets_are_not_interchangeable(self):
        cache = ResultCache(capacity=4)
        cache.put([1], [2], {(1, 2)})
        assert cache.get([2], [1]) is None


class TestEviction:
    def test_lru_evicts_oldest(self):
        cache = ResultCache(capacity=2)
        cache.put([1], [1], set())
        cache.put([2], [2], set())
        assert cache.get([1], [1]) == set()  # refresh entry 1
        cache.put([3], [3], set())  # evicts entry 2
        assert cache.get([2], [2]) is None
        assert cache.get([1], [1]) == set()
        assert cache.stats.evictions == 1

    def test_capacity_bound_holds(self):
        cache = ResultCache(capacity=3)
        for i in range(10):
            cache.put([i], [i], set())
        assert len(cache) == 3

    def test_invalid_capacity_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(capacity=0)


class TestTtl:
    def test_entry_expires_after_ttl(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=10.0, clock=clock)
        cache.put([1], [2], {(1, 2)})
        clock.advance(9.0)
        assert cache.get([1], [2]) == {(1, 2)}
        clock.advance(2.0)
        assert cache.get([1], [2]) is None
        assert cache.stats.expirations == 1

    def test_no_ttl_means_no_expiry(self):
        clock = FakeClock()
        cache = ResultCache(capacity=4, ttl_seconds=None, clock=clock)
        cache.put([1], [2], {(1, 2)})
        clock.advance(1e9)
        assert cache.get([1], [2]) == {(1, 2)}

    def test_invalid_ttl_rejected(self):
        with pytest.raises(ValueError):
            ResultCache(ttl_seconds=0.0)


class TestInvalidation:
    def test_invalidate_all_drops_everything(self):
        cache = ResultCache(capacity=8)
        for i in range(5):
            cache.put([i], [i], set())
        assert cache.invalidate_all() == 5
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_empty_invalidation_not_counted(self):
        cache = ResultCache(capacity=8)
        assert cache.invalidate_all() == 0
        assert cache.stats.invalidations == 0

    def test_hit_rate(self):
        cache = ResultCache(capacity=4)
        cache.put([1], [2], set())
        cache.get([1], [2])
        cache.get([3], [4])
        assert cache.stats.hit_rate == 0.5
        assert cache.stats.as_dict()["hit_rate"] == 0.5
