"""ServiceMetrics latency windows: bounded memory, exact percentiles.

Pins the sliding-window contract: latency samples per request kind live in a
fixed-size ring (``max_samples``), so a long-lived server computes
percentiles over *recent* traffic in bounded memory, while the request
counters keep counting every recording ever made.
"""

import pytest

from repro.service.server import ServiceMetrics


class TestBoundedWindow:
    def test_window_evicts_oldest_samples(self):
        metrics = ServiceMetrics(max_samples=4)
        for value in range(1, 101):
            metrics.record("query", float(value))
        # Only the last four samples (97..100) remain visible.
        assert metrics.percentile("query", 1) == 97.0
        assert metrics.percentile("query", 100) == 100.0

    def test_counters_outlive_the_window(self):
        metrics = ServiceMetrics(max_samples=4)
        for value in range(100):
            metrics.record("query", 0.001)
        assert metrics.count("query_count") == 100

    def test_kinds_have_independent_windows(self):
        metrics = ServiceMetrics(max_samples=2)
        metrics.record("query", 1.0)
        metrics.record("update", 9.0)
        metrics.record("query", 2.0)
        metrics.record("query", 3.0)
        assert metrics.percentile("query", 100) == 3.0
        assert metrics.percentile("query", 1) == 2.0
        assert metrics.percentile("update", 50) == 9.0


class TestPercentileSemantics:
    def test_exact_order_statistics(self):
        metrics = ServiceMetrics()
        for value in range(1, 101):  # 1..100, shuffled insert order is moot
            metrics.record("query", float(value))
        # Nearest-rank definition: rank = ceil(p/100 * n).
        assert metrics.percentile("query", 50) == 50.0
        assert metrics.percentile("query", 95) == 95.0
        assert metrics.percentile("query", 99) == 99.0
        assert metrics.percentile("query", 100) == 100.0

    def test_single_sample_is_every_percentile(self):
        metrics = ServiceMetrics()
        metrics.record("query", 0.25)
        for percent in (1, 50, 99, 100):
            assert metrics.percentile("query", percent) == 0.25

    def test_unseen_kind_reports_zero(self):
        assert ServiceMetrics().percentile("nope", 99) == 0.0

    def test_as_dict_percentiles_use_the_window(self):
        metrics = ServiceMetrics(max_samples=2)
        metrics.record("query", 1.0)
        metrics.record("query", 2.0)
        metrics.record("query", 4.0)
        summary = metrics.as_dict()
        assert summary["query_p50_ms"] == pytest.approx(2000.0)
        assert summary["query_p99_ms"] == pytest.approx(4000.0)
        # The counter still reflects all three recordings.
        assert summary["query_count"] == 3
