"""Worker-side metrics deltas ship to the master exactly.

The packed-step kernels count sources/groups/handle-bytes as pure functions
of their inputs, so a sharded run (deltas piggybacked on shard-task replies
and absorbed master-side) must land on exactly the totals a serial in-process
run records — the same exactness contract the ``Network.absorb()`` tests
enforce for communication counters.

The executor matrix honours ``REPRO_TEST_EXECUTORS`` (comma-separated subset
of ``serial,threads,processes``).
"""

import os

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.cluster.executors import StaleEpochError
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.obs import use_registry

EXECUTORS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_TEST_EXECUTORS", "serial,threads,processes"
    ).split(",")
    if name.strip()
)

#: Counters recorded inside the step kernels — deterministic given the graph,
#: partitioning and query batch, wherever the kernel runs.
STEP_COUNTERS = (
    ("dsr_step_sources_total", {"step": "local"}),
    ("dsr_step_sources_total", {"step": "remote"}),
    ("dsr_step_groups_total", {"step": "local"}),
    ("dsr_step_groups_total", {"step": "remote"}),
    ("dsr_step_handle_bytes_total", {"step": "local"}),
)


def _graph():
    return generators.social_graph(140, avg_degree=5, seed=4)


def _queries():
    return [
        ReachQuery(
            tuple(range(start, start + 4)),
            tuple(range(60 + start, 66 + start)),
            representation="bits",
        )
        for start in (0, 8, 16)
    ]


def _run_workload(executor):
    """Run the fixed bits-representation workload; return (answers, totals)."""
    with use_registry() as registry:
        engine = open_engine(
            _graph(),
            DSRConfig(num_partitions=3, local_index="msbfs", executor=executor),
        )
        try:
            answers = [frozenset(engine.run(query).pairs) for query in _queries()]
        finally:
            engine.close()
        totals = {
            (name, tuple(sorted(labels.items()))): registry.counter_value(
                name, **labels
            )
            for name, labels in STEP_COUNTERS
        }
        stale_retries = registry.counter_value("dsr_query_stale_retries_total")
    return answers, totals, stale_retries


class TestDeltaExactness:
    @pytest.mark.parametrize("executor", [e for e in EXECUTORS if e != "serial"])
    def test_sharded_totals_equal_serial_totals(self, executor):
        serial_answers, serial_totals, _ = _run_workload("serial")
        sharded_answers, sharded_totals, sharded_stale = _run_workload(executor)
        assert sharded_answers == serial_answers
        # No stale retry fired (nothing flushed), so the counts must agree
        # to the last unit — any drift means a delta was lost or doubled.
        assert sharded_stale == 0
        assert sharded_totals == serial_totals

    def test_serial_workload_actually_records(self):
        _, totals, _ = _run_workload("serial")
        assert totals[("dsr_step_sources_total", (("step", "local"),))] > 0
        assert totals[("dsr_step_groups_total", (("step", "local"),))] > 0
        assert totals[("dsr_step_handle_bytes_total", (("step", "local"),))] > 0


@pytest.mark.skipif("processes" not in EXECUTORS, reason="processes executor excluded")
class TestProcessesObservability:
    def test_shard_task_counters_reach_the_master(self):
        with use_registry() as registry:
            engine = open_engine(
                _graph(), DSRConfig(num_partitions=3, executor="processes")
            )
            try:
                engine.run(ReachQuery((0, 1, 2), (70, 71), representation="bits"))
            finally:
                engine.close()
            # These are recorded *inside the worker processes* and can only
            # appear here via the piggybacked deltas.
            assert registry.counter_total("dsr_shard_tasks_total") > 0
            assert registry.histogram_count(
                "dsr_shard_task_seconds", task="dsr.local_step"
            ) > 0
            assert registry.counter_total("dsr_shard_hydrations_total") > 0

    def test_traced_bits_query_has_per_partition_spans(self):
        """The acceptance scenario: executor="processes", representation="bits",
        trace=True → per-partition shard spans, payload bytes, representation."""
        engine = open_engine(
            _graph(), DSRConfig(num_partitions=3, executor="processes")
        )
        try:
            result = engine.run(
                ReachQuery(
                    (0, 1, 2, 3),
                    (60, 61, 62, 63, 64, 65),
                    representation="bits",
                    trace=True,
                )
            )
        finally:
            engine.close()
        trace = result.trace
        assert trace.attrs["representation"] == "bits"
        step1 = trace.find("step1")
        assert step1.attrs["sharded"] is True
        assert step1.attrs["payload_bytes"] > 0
        shard_spans = [s for s in trace.spans if s.name == "step1.shard"]
        assert len(shard_spans) == step1.attrs["partitions"] >= 2
        assert {span.attrs["partition"] for span in shard_spans} == {
            span.attrs["partition"] for span in shard_spans
        }
        assert all(span.seconds >= 0.0 for span in shard_spans)
        bridge = trace.find("step2_bridge")
        assert bridge is not None and "payload_bytes" in bridge.attrs


class TestStaleRetryCounter:
    def test_stale_epoch_retry_is_counted_and_traced(self, monkeypatch):
        graph = generators.social_graph(80, avg_degree=4, seed=2)
        with use_registry() as registry:
            engine = open_engine(graph, DSRConfig(num_partitions=2))
            try:
                executor = engine._executor
                real_execute = executor._execute
                calls = {"n": 0}

                def flaky_execute(*args, **kwargs):
                    if calls["n"] == 0:
                        calls["n"] += 1
                        raise StaleEpochError(0, 99, (0,))
                    return real_execute(*args, **kwargs)

                monkeypatch.setattr(executor, "_execute", flaky_execute)
                result = engine.run(ReachQuery((0, 1), (30, 31), trace=True))
            finally:
                engine.close()
            assert registry.counter_value("dsr_query_stale_retries_total") == 1
        retry = result.trace.find("stale_epoch_retry")
        assert retry is not None
        assert result.pairs == reachable_pairs(graph, [0, 1], [30, 31])
