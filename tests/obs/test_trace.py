"""Per-query tracing: span mechanics plus engine/service integration."""

import time

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.graph import generators
from repro.obs import QueryTrace, Span
from repro.service import DSRService, QueryRequest


class TestSpanMechanics:
    def test_span_contextmanager_times_the_block(self):
        trace = QueryTrace()
        with trace.span("work", step=1) as span:
            time.sleep(0.002)
        assert len(trace) == 1
        assert span.seconds >= 0.002
        assert span.attrs == {"step": 1}
        assert trace.spans[0] is span

    def test_add_and_event(self):
        trace = QueryTrace()
        trace.add("step1.shard", 0.05, partition=2)
        trace.event("stale_epoch_retry", epoch=3)
        assert trace.find("step1.shard").seconds == 0.05
        assert trace.find("stale_epoch_retry").seconds == 0.0
        assert trace.find("stale_epoch_retry").attrs["epoch"] == 3

    def test_find_all_matches_dotted_children(self):
        trace = QueryTrace()
        trace.add("step1", 0.1)
        trace.add("step1.shard", 0.04, partition=0)
        trace.add("step1.shard", 0.05, partition=1)
        trace.add("step3", 0.02)
        assert len(trace.find_all("step1")) == 3
        assert len(trace.find_all("step1.shard")) == 2
        assert trace.find("missing") is None

    def test_merge_child_prefixes_and_annotates(self):
        parent, child = QueryTrace(), QueryTrace()
        child.add("step1", 0.01, sharded=True)
        child.attrs["representation"] = "bits"
        parent.merge_child(child, prefix="batch0.", batch=0)
        merged = parent.find("batch0.step1")
        assert merged is not None
        assert merged.attrs == {"sharded": True, "batch": 0}
        assert parent.attrs["representation"] == "bits"

    def test_wire_round_trip(self):
        trace = QueryTrace()
        trace.attrs["representation"] = "sets"
        trace.add("step1", 0.0125, payload_bytes=64)
        rebuilt = QueryTrace.from_dict(trace.to_dict())
        assert rebuilt.attrs == {"representation": "sets"}
        assert rebuilt.find("step1").seconds == pytest.approx(0.0125)
        assert rebuilt.find("step1").attrs == {"payload_bytes": 64}

    def test_span_dict_round_trip(self):
        span = Span(name="x", seconds=0.5, offset_seconds=0.25, attrs={"a": 1})
        assert Span.from_dict(span.to_dict()) == span


class TestEngineTracing:
    @pytest.fixture(scope="class")
    def engine(self):
        graph = generators.social_graph(150, avg_degree=5, seed=3)
        engine = open_engine(graph, DSRConfig(num_partitions=3, local_index="msbfs"))
        yield engine
        engine.close()

    def test_untraced_query_has_no_trace(self, engine):
        result = engine.run(ReachQuery((0, 1), (40, 50)))
        assert result.trace is None

    def test_traced_query_covers_the_three_steps(self, engine):
        result = engine.run(ReachQuery((0, 1, 2), (40, 50, 60), trace=True))
        trace = result.trace
        assert trace is not None
        assert trace.attrs["representation"] in ("bits", "sets")
        assert trace.attrs["direction"] == "forward"
        assert trace.attrs["epoch"] == engine.epoch
        step1 = trace.find("step1")
        assert step1 is not None
        assert step1.attrs["partitions"] >= 1
        assert "payload_bytes" in step1.attrs
        bridge = trace.find("step2_bridge")
        assert bridge is not None
        assert bridge.attrs["messages"] >= 0

    def test_trace_reports_chosen_representation(self, engine):
        for representation in ("bits", "sets"):
            result = engine.run(
                ReachQuery(
                    (0, 1), (40, 50), representation=representation, trace=True
                )
            )
            assert result.trace.attrs["representation"] == representation

    def test_empty_query_still_returns_a_trace(self, engine):
        result = engine.run(ReachQuery((), (1,), trace=True))
        assert result.trace is not None
        assert result.trace.attrs.get("empty") is True

    def test_swapped_backward_result_keeps_trace(self):
        graph = generators.social_graph(100, avg_degree=4, seed=5)
        engine = open_engine(
            graph, DSRConfig(num_partitions=2, enable_backward=True)
        )
        try:
            result = engine.run(
                ReachQuery((0, 1, 2, 3), (40,), direction="backward", trace=True)
            )
            assert result.trace is not None
            assert result.trace.attrs["direction"] == "backward"
        finally:
            engine.close()


class TestServiceTracing:
    @pytest.fixture(scope="class")
    def service(self):
        graph = generators.social_graph(150, avg_degree=5, seed=3)
        engine = open_engine(graph, DSRConfig(num_partitions=3, local_index="msbfs"))
        service = DSRService(engine, num_workers=2)
        yield service
        service.close()
        engine.close()

    def test_response_carries_trace_dict(self, service):
        response = service.handle(QueryRequest((0, 1), (40, 50), trace=True))
        assert response.trace is not None
        names = [span["name"] for span in response.trace["spans"]]
        assert "plan" in names
        assert "step1" in names
        trace = response.query_trace
        assert isinstance(trace, QueryTrace)
        assert trace.find("plan").attrs["num_batches"] >= 1

    def test_untraced_response_has_none(self, service):
        response = service.handle(QueryRequest((0, 1), (41, 51)))
        assert response.trace is None
        assert response.query_trace is None

    def test_cache_hit_trace_shows_the_lookup(self, service):
        request = QueryRequest((2, 3), (42, 52), trace=True)
        first = service.handle(request)
        second = service.handle(request)
        assert not first.cached and second.cached
        lookup_spans = [
            span
            for span in second.trace["spans"]
            if span["name"] == "cache_lookup"
        ]
        assert lookup_spans and lookup_spans[0]["attrs"]["hit"] is True
        # The cached answer never ran the engine: no step spans.
        assert all(
            not span["name"].startswith("step") for span in second.trace["spans"]
        )

    def test_multi_batch_traces_are_prefixed(self):
        graph = generators.social_graph(120, avg_degree=4, seed=9)
        engine = open_engine(graph, DSRConfig(num_partitions=2))
        service = DSRService(engine, max_batch_pairs=4, enable_cache=False)
        try:
            response = service.handle(
                QueryRequest((0, 1, 2), (30, 31, 32), trace=True)
            )
            assert response.num_batches > 1
            trace = response.query_trace
            assert trace.find("batch0.step1") is not None
            assert trace.find("batch1.step1") is not None
        finally:
            service.close()
            engine.close()
