"""Unit tests for the metrics registry: recording, deltas, exposition."""

import pickle
import threading

import pytest

from repro.obs import (
    DEFAULT_BUCKETS,
    MetricsDelta,
    MetricsRegistry,
    global_registry,
    set_global_registry,
    use_registry,
)


class TestCounters:
    def test_inc_and_read(self):
        registry = MetricsRegistry()
        registry.inc("requests_total")
        registry.inc("requests_total", 2)
        assert registry.counter_value("requests_total") == 3

    def test_labels_are_distinct_series(self):
        registry = MetricsRegistry()
        registry.inc("steps_total", step="local")
        registry.inc("steps_total", 4, step="remote")
        assert registry.counter_value("steps_total", step="local") == 1
        assert registry.counter_value("steps_total", step="remote") == 4
        assert registry.counter_value("steps_total") == 0
        assert registry.counter_total("steps_total") == 5

    def test_label_order_is_irrelevant(self):
        registry = MetricsRegistry()
        registry.inc("m", a="x", b="y")
        registry.inc("m", b="y", a="x")
        assert registry.counter_value("m", b="y", a="x") == 2


class TestGauges:
    def test_last_write_wins(self):
        registry = MetricsRegistry()
        registry.set_gauge("epoch", 1)
        registry.set_gauge("epoch", 5)
        assert registry.gauge_value("epoch") == 5.0
        assert registry.gauge_value("unseen") is None


class TestHistograms:
    def test_count_and_sum(self):
        registry = MetricsRegistry()
        for value in (0.001, 0.002, 0.2):
            registry.observe("latency_seconds", value)
        assert registry.histogram_count("latency_seconds") == 3
        assert registry.histogram_sum("latency_seconds") == pytest.approx(0.203)

    def test_percentile_estimate_lands_in_right_bucket(self):
        registry = MetricsRegistry()
        # 99 tiny observations and one slow outlier: p50 must stay in the
        # small buckets, p99+ must reach the outlier's bucket.
        for _ in range(99):
            registry.observe("t", 0.0002)
        registry.observe("t", 4.0)
        p50 = registry.percentile("t", 50)
        assert 0.0001 <= p50 <= 0.00025
        p100 = registry.percentile("t", 100)
        assert 2.5 <= p100 <= 5.0

    def test_percentile_unseen_is_zero(self):
        assert MetricsRegistry().percentile("never", 99) == 0.0

    def test_custom_buckets(self):
        registry = MetricsRegistry()
        registry.observe("sizes", 15.0, buckets=(10.0, 20.0))
        assert 10.0 <= registry.percentile("sizes", 50) <= 20.0


class TestDisabled:
    def test_disabled_registry_records_nothing(self):
        registry = MetricsRegistry(enabled=False)
        registry.inc("c")
        registry.set_gauge("g", 1.0)
        registry.observe("h", 0.5)
        assert registry.counter_value("c") == 0
        assert registry.gauge_value("g") is None
        assert registry.histogram_count("h") == 0
        assert registry.collect_delta() is None


class TestDeltaShipping:
    def test_collect_resets_and_absorb_restores(self):
        worker = MetricsRegistry()
        worker.inc("tasks_total", 3, task="local")
        worker.observe("seconds", 0.01, task="local")
        worker.set_gauge("shard_epoch", 7)

        delta = worker.collect_delta()
        assert delta is not None and not delta.is_empty
        # The worker side is clean after the collect: nothing double-ships.
        assert worker.collect_delta() is None
        assert worker.counter_value("tasks_total", task="local") == 0

        master = MetricsRegistry()
        master.inc("tasks_total", 1, task="local")
        master.absorb(delta)
        assert master.counter_value("tasks_total", task="local") == 4
        assert master.histogram_count("seconds", task="local") == 1
        assert master.gauge_value("shard_epoch") == 7.0

    def test_delta_is_picklable(self):
        registry = MetricsRegistry()
        registry.inc("c", step="local")
        registry.observe("h", 0.3)
        delta = registry.collect_delta()
        clone = pickle.loads(pickle.dumps(delta))
        target = MetricsRegistry()
        target.absorb(clone)
        assert target.counter_value("c", step="local") == 1
        assert target.histogram_count("h") == 1

    def test_absorb_is_exact_vs_direct_recording(self):
        """Split recording across N 'workers' == recording directly (the
        Network.absorb() exactness property the executor layer relies on)."""
        direct = MetricsRegistry()
        sharded = MetricsRegistry()
        observations = [0.0003, 0.004, 0.004, 0.09, 1.7, 0.00005]
        for i, value in enumerate(observations):
            direct.inc("ops_total", kind="query")
            direct.observe("op_seconds", value)
        for chunk in (observations[:2], observations[2:5], observations[5:]):
            worker = MetricsRegistry()
            for value in chunk:
                worker.inc("ops_total", kind="query")
                worker.observe("op_seconds", value)
            sharded.absorb(worker.collect_delta())
        assert sharded.counter_value("ops_total", kind="query") == len(observations)
        assert sharded.histogram_count("op_seconds") == direct.histogram_count("op_seconds")
        assert sharded.histogram_sum("op_seconds") == pytest.approx(
            direct.histogram_sum("op_seconds")
        )
        for percent in (50, 95, 99):
            assert sharded.percentile("op_seconds", percent) == pytest.approx(
                direct.percentile("op_seconds", percent)
            )

    def test_mismatched_buckets_fold_into_overflow(self):
        master = MetricsRegistry()
        master.observe("h", 0.001)
        other = MetricsRegistry()
        other.observe("h", 0.5, buckets=(1.0,))
        master.absorb(other.collect_delta())
        # Nothing dropped: count and sum stay exact even if shape degrades.
        assert master.histogram_count("h") == 2
        assert master.histogram_sum("h") == pytest.approx(0.501)

    def test_absorb_none_is_a_noop(self):
        registry = MetricsRegistry()
        registry.absorb(None)
        registry.absorb(MetricsDelta())
        assert registry.as_dict() == {"counters": {}, "gauges": {}, "histograms": {}}


class TestExposition:
    def test_as_dict_shape(self):
        registry = MetricsRegistry()
        registry.inc("c_total", 2, kind="q")
        registry.set_gauge("g", 1.5)
        registry.observe("h_seconds", 0.01)
        payload = registry.as_dict()
        assert payload["counters"] == {'c_total{kind="q"}': 2.0}
        assert payload["gauges"] == {"g": 1.5}
        digest = payload["histograms"]["h_seconds"]
        assert digest["count"] == 1
        assert digest["sum"] == pytest.approx(0.01)
        assert digest["p50"] > 0.0

    def test_prometheus_text_format(self):
        registry = MetricsRegistry()
        registry.inc("dsr_queries_total", 3, representation="bits")
        registry.set_gauge("dsr_epoch", 4)
        registry.observe("dsr_query_seconds", 0.004)
        text = registry.to_prometheus()
        assert "# TYPE dsr_queries_total counter" in text
        assert 'dsr_queries_total{representation="bits"} 3' in text
        assert "# TYPE dsr_epoch gauge" in text
        assert "dsr_epoch 4" in text
        assert "# TYPE dsr_query_seconds histogram" in text
        assert 'dsr_query_seconds_bucket{le="+Inf"} 1' in text
        assert "dsr_query_seconds_count 1" in text
        # Bucket counts are cumulative: every bucket at/above 0.005 sees it.
        assert 'dsr_query_seconds_bucket{le="0.005"} 1' in text
        assert 'dsr_query_seconds_bucket{le="0.0025"} 0' in text

    def test_empty_registry_renders_empty(self):
        assert MetricsRegistry().to_prometheus() == ""


class TestGlobalRegistry:
    def test_use_registry_swaps_and_restores(self):
        outer = global_registry()
        with use_registry() as inner:
            assert global_registry() is inner
            assert inner is not outer
            inner.inc("scoped_total")
        assert global_registry() is outer
        assert outer.counter_value("scoped_total") == 0

    def test_set_global_registry_returns_previous(self):
        current = global_registry()
        replacement = MetricsRegistry()
        previous = set_global_registry(replacement)
        try:
            assert previous is current
            assert global_registry() is replacement
        finally:
            set_global_registry(current)


class TestThreadSafety:
    def test_concurrent_increments_are_not_lost(self):
        registry = MetricsRegistry()

        def hammer():
            for _ in range(1000):
                registry.inc("c")
                registry.observe("h", 0.001)

        threads = [threading.Thread(target=hammer) for _ in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert registry.counter_value("c") == 4000
        assert registry.histogram_count("h") == 4000


def test_default_buckets_are_sorted():
    assert list(DEFAULT_BUCKETS) == sorted(DEFAULT_BUCKETS)
