"""Tests for the GraphPartitioning abstraction (cut, boundaries, subqueries)."""

import pytest

from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.partition.partition import GraphPartitioning, PartitioningError, make_partitioning


@pytest.fixture
def simple_partitioning():
    # 0,1,2 in partition 0; 3,4,5 in partition 1; edges crossing both ways.
    graph = DiGraph.from_edges([(0, 1), (1, 2), (2, 3), (3, 4), (4, 5), (5, 0), (1, 4)])
    assignment = {0: 0, 1: 0, 2: 0, 3: 1, 4: 1, 5: 1}
    return graph, GraphPartitioning(graph, assignment, 2)


class TestBasics:
    def test_partition_of(self, simple_partitioning):
        _, part = simple_partitioning
        assert part.partition_of(0) == 0
        assert part.partition_of(4) == 1

    def test_vertices_of(self, simple_partitioning):
        _, part = simple_partitioning
        assert part.vertices_of(0) == {0, 1, 2}
        assert part.vertices_of(1) == {3, 4, 5}

    def test_local_subgraph_is_vertex_induced(self, simple_partitioning):
        _, part = simple_partitioning
        local = part.local_subgraph(0)
        assert set(local.edges()) == {(0, 1), (1, 2)}

    def test_missing_assignment_raises(self):
        graph = DiGraph.from_edges([(0, 1)])
        with pytest.raises(PartitioningError):
            GraphPartitioning(graph, {0: 0}, 1)

    def test_partition_id_out_of_range(self, simple_partitioning):
        _, part = simple_partitioning
        with pytest.raises(PartitioningError):
            part.vertices_of(5)

    def test_unassigned_vertex_lookup_raises(self, simple_partitioning):
        _, part = simple_partitioning
        with pytest.raises(PartitioningError):
            part.partition_of(99)


class TestCutAndBoundaries:
    def test_cut_edges(self, simple_partitioning):
        _, part = simple_partitioning
        assert set(part.cut_edges()) == {(2, 3), (5, 0), (1, 4)}
        assert part.cut_size() == 3

    def test_boundaries_definition3(self, simple_partitioning):
        _, part = simple_partitioning
        assert part.in_boundaries(0) == {0}
        assert part.out_boundaries(0) == {2, 1}
        assert part.in_boundaries(1) == {3, 4}
        assert part.out_boundaries(1) == {5}

    def test_cut_graph_vertices_are_boundaries(self, simple_partitioning):
        _, part = simple_partitioning
        cut = part.cut_graph()
        assert set(cut.vertices()) == part.boundary_vertices()
        assert cut.num_edges == part.cut_size()

    def test_paper_example_boundaries(self):
        graph, assignment = generators.paper_example_graph()
        part = GraphPartitioning(graph, assignment, 3)
        labels = lambda vs: {graph.label_of(v) for v in vs}
        assert labels(part.in_boundaries(0)) == {"f"}
        assert labels(part.out_boundaries(0)) == {"b", "e"}
        assert labels(part.in_boundaries(1)) == {"c", "g", "h"}
        assert labels(part.out_boundaries(1)) == {"i"}
        assert labels(part.in_boundaries(2)) == {"m", "n"}
        assert labels(part.out_boundaries(2)) == {"o"}


class TestQuerySplitAndStats:
    def test_split_query(self, simple_partitioning):
        _, part = simple_partitioning
        split = part.split_query([0, 4], [2, 5])
        assert split[0] == ({0}, {2})
        assert split[1] == ({4}, {5})

    def test_split_query_skips_empty_partitions(self):
        graph = DiGraph.from_edges([(0, 1), (2, 3)])
        part = GraphPartitioning(graph, {0: 0, 1: 0, 2: 1, 3: 1}, 2)
        split = part.split_query([0], [1])
        assert list(split.keys()) == [0]

    def test_summary_fields(self, simple_partitioning):
        _, part = simple_partitioning
        summary = part.summary()
        assert summary["num_partitions"] == 2
        assert summary["cut_edges"] == 3
        assert 0 < summary["cut_fraction"] < 1

    def test_edge_balance_positive(self, simple_partitioning):
        _, part = simple_partitioning
        assert part.edge_balance() >= 1.0


class TestFactory:
    def test_make_partitioning_strategies(self):
        graph = generators.random_digraph(60, 150, seed=1)
        for strategy in ("hash", "metis"):
            part = make_partitioning(graph, 3, strategy=strategy)
            assert part.num_partitions == 3
            assert sum(len(part.vertices_of(i)) for i in range(3)) == 60

    def test_unknown_strategy(self):
        graph = generators.random_digraph(10, 20, seed=1)
        with pytest.raises(ValueError):
            make_partitioning(graph, 2, strategy="zigzag")

    def test_invalid_partition_count(self):
        graph = generators.random_digraph(10, 20, seed=1)
        with pytest.raises(PartitioningError):
            make_partitioning(graph, 0)
