"""Tests for the hash and METIS-like partitioners."""


from repro.graph import generators
from repro.partition.hash_partitioner import hash_partition
from repro.partition.metis_like import metis_like_partition


class TestHashPartitioner:
    def test_every_vertex_assigned(self):
        graph = generators.random_digraph(100, 250, seed=1)
        part = hash_partition(graph, 4)
        assert sum(len(part.vertices_of(i)) for i in range(4)) == 100

    def test_deterministic_per_seed(self):
        graph = generators.random_digraph(100, 250, seed=1)
        a = hash_partition(graph, 4, seed=3)
        b = hash_partition(graph, 4, seed=3)
        assert a.assignment == b.assignment

    def test_seed_changes_assignment(self):
        graph = generators.random_digraph(200, 500, seed=1)
        a = hash_partition(graph, 4, seed=1)
        b = hash_partition(graph, 4, seed=2)
        assert a.assignment != b.assignment

    def test_roughly_balanced(self):
        graph = generators.random_digraph(400, 800, seed=1)
        part = hash_partition(graph, 4)
        sizes = [len(part.vertices_of(i)) for i in range(4)]
        assert max(sizes) < 2 * min(sizes)


class TestMetisLikePartitioner:
    def test_every_vertex_assigned(self):
        graph = generators.web_graph(300, avg_degree=6, seed=2)
        part = metis_like_partition(graph, 4)
        assert sum(len(part.vertices_of(i)) for i in range(4)) == 300

    def test_balance_constraint(self):
        graph = generators.web_graph(400, avg_degree=6, seed=2)
        part = metis_like_partition(graph, 4, imbalance=1.3)
        sizes = [len(part.vertices_of(i)) for i in range(4)]
        assert max(sizes) <= 1.3 * (400 / 4) + 2

    def test_cut_smaller_than_hash(self):
        """The Table-5 contrast: min-cut partitioning beats random sharding."""
        graph = generators.community_graph(6, 50, intra_prob=0.1, inter_prob=0.002, seed=3)
        hash_cut = hash_partition(graph, 4, seed=1).cut_size()
        metis_cut = metis_like_partition(graph, 4, seed=1).cut_size()
        assert metis_cut < hash_cut

    def test_single_partition(self):
        graph = generators.random_digraph(50, 100, seed=1)
        part = metis_like_partition(graph, 1)
        assert part.cut_size() == 0

    def test_more_partitions_than_vertices(self):
        graph = generators.random_digraph(3, 3, seed=1)
        part = metis_like_partition(graph, 8)
        assert sum(len(part.vertices_of(i)) for i in range(8)) == 3

    def test_deterministic(self):
        graph = generators.web_graph(200, avg_degree=5, seed=4)
        a = metis_like_partition(graph, 3, seed=5)
        b = metis_like_partition(graph, 3, seed=5)
        assert a.assignment == b.assignment

    def test_handles_disconnected_graph(self):
        graph = generators.random_digraph(50, 30, seed=6)  # sparse → disconnected
        part = metis_like_partition(graph, 4)
        assert sum(len(part.vertices_of(i)) for i in range(4)) == 50
