"""End-to-end integration tests across subsystems.

These tests wire several subsystems together the way the examples and
benchmarks do: dataset generator → partitioner → DSR index → queries →
updates → applications, and cross-check every answer against ground truth or
an independent implementation.
"""

import random


from repro.analytics.connectedness import CommunityConnectedness
from repro.bench.datasets import load_dataset
from repro.bench.runner import ExperimentRunner
from repro.bench.workloads import random_query
from repro.core.engine import DSREngine
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.sparql.baseline import VirtuosoLikeEngine
from repro.sparql.engine import PropertyPathEngine
from repro.sparql.lubm import generate_lubm_triples, lubm_queries
from repro.sparql.rdf import TripleStore


class TestFullPipeline:
    def test_dataset_to_query_pipeline(self):
        graph = load_dataset("berkstan", scale=0.2, seed=5)
        engine = DSREngine(graph, num_partitions=5, local_index="msbfs", seed=5)
        engine.build_index()
        sources, targets = random_query(graph, 10, 10, seed=6)
        assert engine.query(sources, targets) == reachable_pairs(graph, sources, targets)

    def test_every_approach_agrees_on_one_workload(self):
        graph = load_dataset("notredame", scale=0.2, seed=6)
        runner = ExperimentRunner(graph, num_partitions=4, local_index="msbfs", seed=6)
        sources, targets = random_query(graph, 6, 6, seed=7)
        results = runner.run(
            ["dsr", "dsr-noeq", "giraph", "giraph++", "giraph++weq", "dsr-fan"],
            sources,
            targets,
        )
        assert len({result.num_pairs for result in results}) == 1

    def test_query_after_mixed_update_sequence(self):
        graph = generators.web_graph(180, avg_degree=5, seed=8)
        engine = DSREngine(graph, num_partitions=4, local_index="msbfs", seed=8)
        engine.build_index()
        rng = random.Random(8)
        vertices = sorted(graph.vertices())

        # Interleave insertions, deletions and queries; always verify.
        for step in range(3):
            existing = sorted(graph.edges())
            removal = rng.choice(existing)
            engine.delete_edge(*removal)
            u, v = rng.sample(vertices, 2)
            engine.insert_edge(u, v)
            new_vertex = engine.insert_vertex()
            engine.insert_edge(new_vertex, rng.choice(vertices))

            sources = rng.sample(vertices, 6)
            targets = rng.sample(vertices, 6) + [new_vertex]
            assert engine.query(sources, targets) == reachable_pairs(
                graph, sources, targets
            )

    def test_sparql_pipeline_against_baseline(self):
        store = TripleStore()
        store.add_all(generate_lubm_triples(3, 3, 3, 3, seed=9))
        dsr_engine = PropertyPathEngine(store, num_slaves=3)
        baseline = VirtuosoLikeEngine(store)
        for name, text in lubm_queries().items():
            dsr_result = dsr_engine.execute(text)
            baseline_result = baseline.execute(text)
            assert {
                tuple(sorted(b.items())) for b in dsr_result.bindings
            } == {tuple(sorted(b.items())) for b in baseline_result.bindings}, name

    def test_community_application_on_dataset(self):
        graph = generators.community_graph(5, 30, intra_prob=0.1, seed=10)
        analysis = CommunityConnectedness(graph, num_partitions=3, seed=3)
        report = analysis.analyse(representatives=8)
        sources = analysis.sample_representatives(report.community_a, 8)
        # All reported pairs must be genuine.
        for s, t in report.pairs:
            assert reachable_pairs(graph, [s], [t]) == {(s, t)}

    def test_paper_narrative_single_machine_vs_cluster(self):
        """The same query must be answerable with 1 or many slaves."""
        graph = load_dataset("livej20", scale=0.15, seed=11)
        sources, targets = random_query(graph, 8, 8, seed=11)
        expected = reachable_pairs(graph, sources, targets)
        for slaves in (1, 3, 6):
            engine = DSREngine(graph, num_partitions=slaves, local_index="msbfs", seed=11)
            engine.build_index()
            assert engine.query(sources, targets) == expected
