"""The old entry points still work — but only via the documented shims.

The pre-``repro.api`` surface (``DSREngine(graph, num_partitions=...)``,
``engine.query(sources, targets)``, ``engine.query_with_stats(...)``) is kept
as thin shims that emit :class:`DeprecationWarning`; the new surface must be
completely silent under ``-W error::DeprecationWarning``.
"""

import warnings

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.core.engine import DSREngine
from repro.graph import generators


@pytest.fixture(scope="module")
def graph():
    return generators.random_digraph(40, 110, seed=9)


@pytest.fixture(scope="module")
def engine(graph):
    return open_engine(graph, DSRConfig(num_partitions=3, local_index="msbfs"))


class TestOldSurfaceWarns:
    def test_direct_constructor_warns(self, graph):
        with pytest.warns(DeprecationWarning, match="open_engine"):
            DSREngine(graph, num_partitions=3)

    def test_query_shim_warns_and_matches_run(self, graph, engine):
        query = ReachQuery((0, 1), (20, 30))
        expected = engine.run(query).pairs
        with pytest.warns(DeprecationWarning, match="run\\(ReachQuery"):
            assert engine.query([0, 1], [20, 30]) == expected

    def test_query_with_stats_shim_warns_and_matches_run(self, engine):
        query = ReachQuery((0, 1), (20, 30))
        expected = engine.run(query)
        with pytest.warns(DeprecationWarning):
            result = engine.query_with_stats([0, 1], [20, 30])
        assert result.pairs == expected.pairs

    def test_shim_still_validates_direction(self, engine):
        with pytest.warns(DeprecationWarning):
            with pytest.raises(ValueError):
                engine.query([0], [1], direction="sideways")


class TestNewSurfaceIsClean:
    """The documented replacement path emits no DeprecationWarning at all."""

    def test_config_registry_run_roundtrip_is_warning_free(self, graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            config = DSRConfig.from_dict(
                DSRConfig(num_partitions=3, local_index="msbfs").to_dict()
            )
            engine = open_engine(graph, config)
            result = engine.run(ReachQuery((0, 1, 2), (10, 11)))
            assert result.rounds >= 1
            assert engine.reachable(0, 1) in (True, False)
            engine.insert_edge(0, 1)
            assert engine.reachable(0, 1)

    def test_from_config_is_warning_free(self, graph):
        with warnings.catch_warnings():
            warnings.simplefilter("error", DeprecationWarning)
            engine = DSREngine.from_config(
                graph, DSRConfig(num_partitions=2), partitioning=None
            )
            engine.build_index()
            assert engine.config == DSRConfig(num_partitions=2)

    def test_from_config_rejects_foreign_backend(self, graph):
        with pytest.raises(ValueError, match="backend='dsr'"):
            DSREngine.from_config(graph, DSRConfig(backend="giraph"))

    def test_config_reconciled_to_supplied_partitioning(self, graph):
        # engine.config must keep describing the engine faithfully even when
        # a pre-computed partitioning overrides the config's partition count.
        from repro.partition.partition import make_partitioning

        partitioning = make_partitioning(graph, 5, strategy="hash", seed=1)
        engine = DSREngine.from_config(
            graph, DSRConfig(num_partitions=3), partitioning=partitioning
        )
        assert engine.config.num_partitions == 5
        assert engine.partitioning is partitioning
