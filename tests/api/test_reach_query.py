"""Tests for the unified :class:`repro.api.ReachQuery` object."""

import pytest

from repro.api import QueryError, ReachQuery, as_reach_query


class TestConstruction:
    def test_coerces_iterables_to_tuples(self):
        query = ReachQuery([3, 1], {2})
        assert query.sources == (3, 1)
        assert query.targets == (2,)

    def test_defaults(self):
        query = ReachQuery((1,), (2,))
        assert query.direction == "auto"
        assert query.use_cache is True
        assert query.max_batch_pairs is None

    def test_frozen_and_hashable(self):
        query = ReachQuery((1,), (2,))
        with pytest.raises(AttributeError):
            query.direction = "forward"
        assert query == ReachQuery([1], [2])
        assert hash(query) == hash(ReachQuery((1,), (2,)))

    def test_single_pair_constructor(self):
        query = ReachQuery.single(4, 9)
        assert query.sources == (4,)
        assert query.targets == (9,)

    def test_invalid_direction_rejected(self):
        with pytest.raises(QueryError):
            ReachQuery((1,), (2,), direction="sideways")

    @pytest.mark.parametrize("bad", [0, -3, 2.5, True, "many"])
    def test_invalid_batch_budget_rejected(self, bad):
        with pytest.raises(QueryError):
            ReachQuery((1,), (2,), max_batch_pairs=bad)


class TestIntrospection:
    def test_is_empty(self):
        assert ReachQuery((), (1,)).is_empty
        assert ReachQuery((1,), ()).is_empty
        assert not ReachQuery((1,), (2,)).is_empty

    def test_num_pairs(self):
        assert ReachQuery((1, 2, 3), (4, 5)).num_pairs == 6


class TestRoundTrip:
    def test_from_dict_inverts_to_dict(self):
        query = ReachQuery(
            (1, 2), (3,), direction="backward", use_cache=False, max_batch_pairs=10
        )
        assert ReachQuery.from_dict(query.to_dict()) == query

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(QueryError, match="unknown query keys"):
            ReachQuery.from_dict({"sources": [1], "targets": [2], "limit": 5})

    def test_from_dict_requires_sources_and_targets(self):
        with pytest.raises(QueryError, match="missing"):
            ReachQuery.from_dict({"sources": [1]})


class TestAsReachQuery:
    def test_passthrough(self):
        query = ReachQuery((1,), (2,), direction="forward")
        assert as_reach_query(query) is query

    def test_positional_form(self):
        query = as_reach_query([1, 2], [3], "backward")
        assert query == ReachQuery((1, 2), (3,), direction="backward")

    def test_query_plus_targets_rejected(self):
        with pytest.raises(TypeError):
            as_reach_query(ReachQuery((1,), (2,)), [3])

    def test_query_plus_direction_rejected(self):
        # An explicit direction next to a query object would be silently
        # shadowed by the query's own direction — refuse instead.
        with pytest.raises(TypeError, match="direction"):
            as_reach_query(ReachQuery((1,), (2,)), direction="backward")

    def test_missing_targets_rejected(self):
        with pytest.raises(TypeError):
            as_reach_query([1, 2])
