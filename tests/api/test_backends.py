"""Tests for the backend registry and cross-backend answer parity."""

import pytest

from repro.api import (
    Backend,
    DSRConfig,
    ReachQuery,
    UnknownBackendError,
    available_backends,
    open_engine,
    register_backend,
    unregister_backend,
)
from repro.core.query import QueryResult
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.partition.partition import make_partitioning

#: Every built-in strategy the acceptance criteria name, plus the Fan
#: baseline which rides along for free.
ALL_BUILTIN_BACKENDS = ("dsr", "giraph", "giraphpp", "giraphpp-eq", "naive", "fan")


@pytest.fixture(scope="module")
def seeded_graph():
    graph = generators.random_digraph(70, 210, seed=17)
    vertices = sorted(graph.vertices())
    sources = tuple(vertices[:9])
    targets = tuple(vertices[9:18])
    return graph, sources, targets


class TestRegistry:
    def test_builtins_are_registered(self):
        names = available_backends()
        for name in ALL_BUILTIN_BACKENDS:
            assert name in names

    def test_unknown_backend_rejected_with_available_list(self):
        graph = generators.random_digraph(10, 20, seed=1)
        with pytest.raises(UnknownBackendError, match="unknown backend 'teleport'"):
            open_engine(graph, DSRConfig(backend="teleport"))
        with pytest.raises(UnknownBackendError, match="dsr"):
            open_engine(graph, DSRConfig(backend="teleport"))

    def test_duplicate_registration_rejected(self):
        with pytest.raises(ValueError, match="already registered"):
            register_backend("dsr", lambda graph, config, partitioning: None)

    def test_custom_backend_registration_and_replace(self):
        class FixedAnswer:
            name = "fixed"

            def run(self, query):
                return QueryResult(pairs={(0, 0)})

            def reachable(self, source, target):
                return (source, target) in self.run(None).pairs

        graph = generators.random_digraph(10, 20, seed=1)
        try:
            register_backend("fixed", lambda g, c, p: FixedAnswer())
            engine = open_engine(graph, DSRConfig(backend="fixed"))
            assert engine.run(ReachQuery((1,), (2,))).pairs == {(0, 0)}
            # replace=True swaps the factory in place.
            register_backend(
                "fixed", lambda g, c, p: FixedAnswer(), replace=True
            )
        finally:
            unregister_backend("fixed")
        assert "fixed" not in available_backends()

    def test_invalid_registration_arguments(self):
        with pytest.raises(ValueError):
            register_backend("", lambda g, c, p: None)
        with pytest.raises(ValueError):
            register_backend("notcallable", "nope")

    def test_default_config_opens_dsr(self):
        graph = generators.random_digraph(20, 50, seed=2)
        engine = open_engine(graph)
        assert engine.name == "dsr"
        assert engine.is_built


class TestBackendParity:
    """Acceptance: every backend answers the same ReachQuery identically."""

    @pytest.mark.parametrize("backend", ALL_BUILTIN_BACKENDS)
    def test_backend_matches_ground_truth(self, seeded_graph, backend):
        graph, sources, targets = seeded_graph
        expected = reachable_pairs(graph, sources, targets)
        engine = open_engine(
            graph, DSRConfig(backend=backend, num_partitions=3, local_index="msbfs")
        )
        result = engine.run(ReachQuery(sources, targets))
        assert result.pairs == expected
        assert isinstance(result, QueryResult)

    def test_all_backends_agree_on_shared_partitioning(self, seeded_graph):
        graph, sources, targets = seeded_graph
        partitioning = make_partitioning(graph, 3, strategy="metis", seed=5)
        query = ReachQuery(sources, targets)
        answers = {
            backend: open_engine(
                graph,
                DSRConfig(backend=backend, local_index="msbfs"),
                partitioning=partitioning,
            ).run(query).pairs
            for backend in ALL_BUILTIN_BACKENDS
        }
        reference = answers["naive"]
        for backend, pairs in answers.items():
            assert pairs == reference, f"{backend} disagrees with naive"

    @pytest.mark.parametrize("backend", ALL_BUILTIN_BACKENDS)
    def test_empty_query_short_circuits(self, seeded_graph, backend):
        graph, sources, _ = seeded_graph
        engine = open_engine(
            graph, DSRConfig(backend=backend, num_partitions=3, local_index="msbfs")
        )
        assert engine.run(ReachQuery((), sources)).pairs == set()
        assert engine.run(ReachQuery(sources, ())).pairs == set()

    @pytest.mark.parametrize("backend", ALL_BUILTIN_BACKENDS)
    def test_reachable_single_pair(self, seeded_graph, backend):
        graph, sources, targets = seeded_graph
        expected = reachable_pairs(graph, sources, targets)
        engine = open_engine(
            graph, DSRConfig(backend=backend, num_partitions=3, local_index="msbfs")
        )
        probe = (sources[0], targets[0])
        assert engine.reachable(*probe) == (probe in expected)

    def test_backward_unsupported_on_traversal_backends(self, seeded_graph):
        graph, sources, targets = seeded_graph
        engine = open_engine(graph, DSRConfig(backend="giraph", num_partitions=3))
        with pytest.raises(ValueError, match="backward"):
            engine.run(ReachQuery(sources, targets, direction="backward"))


class TestBackendProtocol:
    def test_opened_engines_satisfy_protocol(self, seeded_graph):
        graph, _, _ = seeded_graph
        for backend in ALL_BUILTIN_BACKENDS:
            engine = open_engine(graph, DSRConfig(backend=backend, num_partitions=2))
            assert isinstance(engine, Backend)
            assert engine.name == backend
