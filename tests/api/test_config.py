"""Validation and serialisation tests for :class:`repro.api.DSRConfig`."""

import pytest

from repro.api import ConfigError, DSRConfig


class TestDefaults:
    def test_default_config_is_valid(self):
        config = DSRConfig()
        assert config.backend == "dsr"
        assert config.num_partitions == 4
        assert config.use_equivalence is True

    def test_config_is_frozen(self):
        config = DSRConfig()
        with pytest.raises(AttributeError):
            config.backend = "giraph"

    def test_config_is_hashable_without_options(self):
        assert hash(DSRConfig()) == hash(DSRConfig())
        assert DSRConfig() in {DSRConfig()}


class TestValidation:
    @pytest.mark.parametrize(
        "overrides",
        [
            {"backend": ""},
            {"backend": 7},
            {"num_partitions": 0},
            {"num_partitions": -2},
            {"num_partitions": 2.5},
            {"num_partitions": True},
            {"partitioner": "nope"},
            {"local_index": "nope"},
            {"use_equivalence": "yes"},
            {"parallel": 1},
            {"enable_backward": "true"},
            {"seed": "seven"},
            {"local_index_options": ["not", "a", "mapping"]},
            {"local_index_options": {1: "non-string-key"}},
            {"executor": "gpu"},
            {"executor": 3},
            {"epoch_flush": "eventually"},
            {"epoch_flush": True},
        ],
        ids=lambda overrides: repr(overrides),
    )
    def test_invalid_values_rejected(self, overrides):
        with pytest.raises(ConfigError):
            DSRConfig(**overrides)

    def test_config_error_is_a_value_error(self):
        with pytest.raises(ValueError):
            DSRConfig(partitioner="nope")

    def test_all_known_partitioners_and_indexes_accepted(self):
        for partitioner in ("metis", "hash"):
            for local_index in ("dfs", "msbfs", "ferrari", "grail", "closure"):
                DSRConfig(partitioner=partitioner, local_index=local_index)

    def test_replace_revalidates(self):
        config = DSRConfig()
        assert config.replace(num_partitions=8).num_partitions == 8
        with pytest.raises(ConfigError):
            config.replace(num_partitions=0)

    def test_every_executor_and_epoch_flush_mode_accepted(self):
        for executor in ("serial", "threads", "processes"):
            for epoch_flush in ("inline", "background"):
                config = DSRConfig(executor=executor, epoch_flush=epoch_flush)
                assert config.executor == executor
                assert config.epoch_flush == epoch_flush

    def test_defaults_preserve_legacy_behaviour(self):
        config = DSRConfig()
        assert config.executor == "serial"
        assert config.epoch_flush == "inline"


class TestRoundTrip:
    @pytest.mark.parametrize(
        "config",
        [
            DSRConfig(),
            DSRConfig(backend="giraphpp-eq", num_partitions=7, partitioner="hash"),
            DSRConfig(local_index="grail", local_index_options={"num_intervals": 3}),
            DSRConfig(enable_backward=True, parallel=True, seed=99),
            DSRConfig(executor="processes", epoch_flush="background"),
        ],
        ids=[
            "default",
            "giraphpp-eq",
            "with-options",
            "backward-parallel",
            "sharded-background",
        ],
    )
    def test_from_dict_inverts_to_dict(self, config):
        assert DSRConfig.from_dict(config.to_dict()) == config

    def test_to_dict_is_json_safe(self):
        import json

        config = DSRConfig(local_index_options={"k": 2})
        restored = DSRConfig.from_dict(json.loads(json.dumps(config.to_dict())))
        assert restored == config

    def test_to_dict_copies_options(self):
        config = DSRConfig(local_index_options={"k": 2})
        payload = config.to_dict()
        payload["local_index_options"]["k"] = 99
        assert config.local_index_options == {"k": 2}

    def test_from_dict_rejects_unknown_keys(self):
        with pytest.raises(ConfigError, match="unknown config keys: shards"):
            DSRConfig.from_dict({"backend": "dsr", "shards": 3})

    def test_from_dict_rejects_non_mapping(self):
        with pytest.raises(ConfigError):
            DSRConfig.from_dict(["backend", "dsr"])

    def test_from_dict_rejects_invalid_values(self):
        with pytest.raises(ConfigError):
            DSRConfig.from_dict({"num_partitions": 0})


class TestWorkerHosts:
    def test_requires_tcp_executor(self):
        with pytest.raises(ConfigError, match="executor='tcp'"):
            DSRConfig(worker_hosts=["127.0.0.1:9000"])

    def test_rejects_empty_or_non_string_sequences(self):
        with pytest.raises(ConfigError, match="worker_hosts"):
            DSRConfig(executor="tcp", worker_hosts=[])
        with pytest.raises(ConfigError, match="worker_hosts"):
            DSRConfig(executor="tcp", worker_hosts=[("127.0.0.1", 9000)])

    def test_rejects_malformed_specs(self):
        with pytest.raises(ConfigError, match="host:port"):
            DSRConfig(executor="tcp", worker_hosts=["nocolon"])
        with pytest.raises(ConfigError, match="host:port"):
            DSRConfig(executor="tcp", worker_hosts=["host:notaport"])

    def test_normalised_to_tuple_and_round_trips(self):
        import json

        config = DSRConfig(
            executor="tcp", worker_hosts=["127.0.0.1:9000", "10.0.0.2:9001"]
        )
        assert config.worker_hosts == ("127.0.0.1:9000", "10.0.0.2:9001")
        payload = json.loads(json.dumps(config.to_dict()))
        assert payload["worker_hosts"] == ["127.0.0.1:9000", "10.0.0.2:9001"]
        assert DSRConfig.from_dict(payload) == config

    def test_tcp_without_hosts_is_valid_managed_mode(self):
        config = DSRConfig(executor="tcp")
        assert config.worker_hosts is None
