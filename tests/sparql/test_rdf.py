"""Tests for the in-memory triple store."""

import pytest

from repro.sparql.rdf import TripleStore


@pytest.fixture
def store():
    ts = TripleStore()
    ts.add_all(
        [
            ("alice", "knows", "bob"),
            ("bob", "knows", "carol"),
            ("alice", "rdf:type", "Person"),
            ("bob", "rdf:type", "Person"),
            ("acme", "rdf:type", "Company"),
            ("alice", "worksFor", "acme"),
        ]
    )
    return ts


class TestEncoding:
    def test_encode_is_stable(self, store):
        assert store.encode("alice") == store.encode("alice")

    def test_lookup_missing_term(self, store):
        assert store.lookup("nobody") is None

    def test_decode_roundtrip(self, store):
        term_id = store.lookup("bob")
        assert store.decode(term_id) == "bob"

    def test_counts(self, store):
        assert store.num_triples == 6
        assert store.num_terms > 6  # subjects + predicates + objects


class TestIndexes:
    def test_duplicate_triples_ignored(self, store):
        before = store.num_triples
        assert store.add("alice", "knows", "bob") is False
        assert store.num_triples == before

    def test_objects_access_path(self, store):
        alice = store.lookup("alice")
        knows = store.lookup("knows")
        assert store.objects(alice, knows) == {store.lookup("bob")}

    def test_subjects_access_path(self, store):
        person = store.lookup("Person")
        rdf_type = store.lookup("rdf:type")
        assert store.subjects(rdf_type, person) == {
            store.lookup("alice"),
            store.lookup("bob"),
        }

    def test_subject_object_pairs(self, store):
        knows = store.lookup("knows")
        pairs = set(store.subject_object_pairs(knows))
        assert pairs == {
            (store.lookup("alice"), store.lookup("bob")),
            (store.lookup("bob"), store.lookup("carol")),
        }

    def test_entities_of_type(self, store):
        people = store.entities_of_type("Person")
        assert people == {store.lookup("alice"), store.lookup("bob")}

    def test_triples_iteration(self, store):
        assert ("alice", "knows", "bob") in set(store.triples())


class TestGraphProjection:
    def test_predicate_graph(self, store):
        graph = store.predicate_graph("knows")
        alice, bob, carol = (store.lookup(t) for t in ("alice", "bob", "carol"))
        assert graph.has_edge(alice, bob)
        assert graph.has_edge(bob, carol)
        assert graph.num_edges == 2

    def test_unknown_predicate_gives_empty_graph(self, store):
        assert store.predicate_graph("likes").num_vertices == 0

    def test_entity_graph_all_predicates(self, store):
        graph = store.entity_graph()
        assert graph.num_edges == 6

    def test_entity_graph_selected_predicates(self, store):
        graph = store.entity_graph(["knows", "worksFor"])
        assert graph.num_edges == 3
