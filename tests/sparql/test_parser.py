"""Tests for the SPARQL subset parser."""

import pytest

from repro.sparql.freebase_like import freebase_queries
from repro.sparql.lubm import lubm_queries
from repro.sparql.parser import SparqlSyntaxError, parse_query


class TestBasicParsing:
    def test_simple_bgp(self):
        query = parse_query("SELECT * WHERE { ?x rdf:type ub:University . ?x ub:name ?n }")
        assert len(query.patterns) == 2
        assert query.variables == ("?x", "?n")
        assert not query.patterns[0].transitive

    def test_property_path_flag(self):
        query = parse_query("SELECT * WHERE { ?x ub:subOrganizationOf* ?y }")
        pattern = query.patterns[0]
        assert pattern.transitive
        assert pattern.predicate == "ub:subOrganizationOf"

    def test_dotted_iris_not_split(self):
        query = parse_query(
            "SELECT * WHERE { ?p fb:people.person.place_of_birth ?city . "
            "?city fb:location.location.containedby* ?state . }"
        )
        assert len(query.patterns) == 2
        assert query.patterns[0].predicate == "fb:people.person.place_of_birth"
        assert query.patterns[1].transitive

    def test_prefix_lines_ignored(self):
        text = (
            "@prefix ub: <http://example.org/ub#>\n"
            "SELECT * WHERE { ?x rdf:type ub:University }"
        )
        assert len(parse_query(text).patterns) == 1

    def test_case_insensitive_keywords(self):
        assert len(parse_query("select * where { ?a ?p? ?b }".replace("?p?", "p")).patterns) == 1

    def test_trailing_dot_tolerated(self):
        query = parse_query("SELECT * WHERE { ?x p ?y . }")
        assert len(query.patterns) == 1

    def test_path_and_flat_pattern_split(self):
        query = parse_query(
            "SELECT * WHERE { ?x rdf:type T . ?x p* ?y . ?y rdf:type U }"
        )
        assert len(query.flat_patterns) == 2
        assert len(query.path_patterns) == 1


class TestErrors:
    def test_missing_where(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT ?x { ?x p ?y }")

    def test_empty_pattern(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT * WHERE {   }")

    def test_wrong_arity(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT * WHERE { ?x p }")

    def test_variable_predicate_rejected(self):
        with pytest.raises(SparqlSyntaxError):
            parse_query("SELECT * WHERE { ?x ?p ?y }")


class TestPaperQueries:
    @pytest.mark.parametrize("name,text", sorted(lubm_queries().items()))
    def test_lubm_queries_parse(self, name, text):
        query = parse_query(text)
        assert query.path_patterns, name

    @pytest.mark.parametrize("name,text", sorted(freebase_queries().items()))
    def test_freebase_queries_parse(self, name, text):
        query = parse_query(text)
        assert query.patterns, name
