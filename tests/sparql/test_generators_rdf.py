"""Tests for the LUBM-like and Freebase-like RDF generators."""


from repro.sparql.freebase_like import generate_freebase_triples
from repro.sparql.lubm import generate_lubm_triples
from repro.sparql.rdf import TripleStore


class TestLubmGenerator:
    def test_deterministic(self):
        assert generate_lubm_triples(seed=3) == generate_lubm_triples(seed=3)

    def test_scales_with_parameters(self):
        small = generate_lubm_triples(2, 2, 2, 2, seed=0)
        large = generate_lubm_triples(4, 4, 4, 4, seed=0)
        assert len(large) > len(small)

    def test_expected_types_present(self):
        store = TripleStore()
        store.add_all(generate_lubm_triples(2, 3, 2, 2, seed=1))
        assert len(store.entities_of_type("ub:University")) == 2
        assert len(store.entities_of_type("ub:Department")) == 6
        assert len(store.entities_of_type("ub:ResearchGroup")) == 12
        assert len(store.entities_of_type("ub:FullProfessor")) == 6

    def test_hierarchy_reaches_universities(self):
        store = TripleStore()
        store.add_all(generate_lubm_triples(2, 2, 2, 2, seed=2))
        graph = store.predicate_graph("ub:subOrganizationOf")
        from repro.graph.traversal import bfs_reachable_set

        universities = store.entities_of_type("ub:University")
        for group in store.entities_of_type("ub:ResearchGroup"):
            assert bfs_reachable_set(graph, group) & universities


class TestFreebaseGenerator:
    def test_deterministic(self):
        assert generate_freebase_triples(seed=5) == generate_freebase_triples(seed=5)

    def test_containment_chain(self):
        store = TripleStore()
        store.add_all(generate_freebase_triples(2, 2, 2, 2, seed=1))
        graph = store.predicate_graph("fb:location.location.containedby")
        from repro.graph.traversal import bfs_reachable_set

        countries = store.entities_of_type("fb:location.country")
        cities = store.entities_of_type("fb:location.citytown")
        assert cities
        for city in cities:
            assert bfs_reachable_set(graph, city) & countries

    def test_people_have_birthplaces(self):
        store = TripleStore()
        store.add_all(generate_freebase_triples(2, 2, 2, 3, seed=2))
        birth = store.lookup("fb:people.person.place_of_birth")
        people = store.entities_of_type("fb:people.person")
        for person in people:
            assert store.objects(person, birth)
