"""Tests for the DSR-backed property-path engine and the Virtuoso-like baseline."""

import pytest

from repro.sparql.baseline import VirtuosoLikeEngine
from repro.sparql.engine import PropertyPathEngine
from repro.sparql.freebase_like import freebase_queries, generate_freebase_triples
from repro.sparql.lubm import generate_lubm_triples, lubm_queries
from repro.sparql.rdf import TripleStore


@pytest.fixture(scope="module")
def lubm_store():
    store = TripleStore()
    store.add_all(
        generate_lubm_triples(
            num_universities=3,
            departments_per_university=4,
            groups_per_department=3,
            students_per_department=4,
            seed=0,
        )
    )
    return store


@pytest.fixture(scope="module")
def freebase_store():
    store = TripleStore()
    store.add_all(
        generate_freebase_triples(
            num_countries=2,
            states_per_country=3,
            cities_per_state=3,
            people_per_city=3,
            seed=0,
        )
    )
    return store


def binding_set(result):
    return {tuple(sorted(binding.items())) for binding in result.bindings}


class TestSimpleQueries:
    def test_flat_pattern_only(self, lubm_store):
        engine = PropertyPathEngine(lubm_store, num_slaves=2)
        result = engine.execute(
            "SELECT * WHERE { ?x rdf:type ub:University }"
        )
        assert result.num_results == 3
        decoded = result.decoded(lubm_store)
        assert {row["?x"] for row in decoded} == {"univ0", "univ1", "univ2"}

    def test_constant_subject(self, lubm_store):
        engine = PropertyPathEngine(lubm_store, num_slaves=2)
        result = engine.execute(
            "SELECT * WHERE { univ0.dept0 ub:subOrganizationOf* ?y . ?y rdf:type ub:University }"
        )
        decoded = result.decoded(lubm_store)
        assert {row["?y"] for row in decoded} == {"univ0"}

    def test_zero_length_path(self, lubm_store):
        """``p*`` matches zero steps, so a vertex always reaches itself."""
        engine = PropertyPathEngine(lubm_store, num_slaves=2)
        result = engine.execute(
            "SELECT * WHERE { ?x rdf:type ub:University . ?x ub:subOrganizationOf* ?y . "
            "?y rdf:type ub:University }"
        )
        decoded = result.decoded(lubm_store)
        assert {(row["?x"], row["?y"]) for row in decoded} == {
            ("univ0", "univ0"),
            ("univ1", "univ1"),
            ("univ2", "univ2"),
        }

    def test_no_results_for_unsatisfiable_query(self, lubm_store):
        engine = PropertyPathEngine(lubm_store, num_slaves=2)
        result = engine.execute("SELECT * WHERE { ?x rdf:type ub:Nothing }")
        assert result.num_results == 0

    def test_unknown_path_predicate(self, lubm_store):
        engine = PropertyPathEngine(lubm_store, num_slaves=2)
        result = engine.execute(
            "SELECT * WHERE { ?x rdf:type ub:University . ?x ub:missing* ?y . "
            "?y rdf:type ub:University }"
        )
        # Only the zero-length matches survive.
        decoded = result.decoded(lubm_store)
        assert all(row["?x"] == row["?y"] for row in decoded)


class TestAgainstBaseline:
    @pytest.mark.parametrize("name", ["L1", "L2", "L3"])
    def test_lubm_queries_match_baseline(self, lubm_store, name):
        query = lubm_queries()[name]
        dsr = PropertyPathEngine(lubm_store, num_slaves=3).execute(query)
        cold = VirtuosoLikeEngine(lubm_store, warm=False).execute(query)
        assert binding_set(dsr) == binding_set(cold)
        assert dsr.num_results > 0

    @pytest.mark.parametrize("name", ["F1", "F2", "F3"])
    def test_freebase_queries_match_baseline(self, freebase_store, name):
        query = freebase_queries()[name]
        dsr = PropertyPathEngine(freebase_store, num_slaves=3).execute(query)
        cold = VirtuosoLikeEngine(freebase_store, warm=False).execute(query)
        assert binding_set(dsr) == binding_set(cold)

    def test_warm_baseline_matches_cold(self, lubm_store):
        query = lubm_queries()["L1"]
        cold = VirtuosoLikeEngine(lubm_store, warm=False).execute(query)
        warm_engine = VirtuosoLikeEngine(lubm_store, warm=True)
        warm_engine.execute(query)  # fill memo
        warm = warm_engine.execute(query)
        assert binding_set(cold) == binding_set(warm)

    def test_num_slaves_does_not_change_results(self, lubm_store):
        query = lubm_queries()["L2"]
        one = PropertyPathEngine(lubm_store, num_slaves=1).execute(query)
        five = PropertyPathEngine(lubm_store, num_slaves=5).execute(query)
        assert binding_set(one) == binding_set(five)


class TestEngineInternals:
    def test_engines_cached_per_predicate(self, lubm_store):
        engine = PropertyPathEngine(lubm_store, num_slaves=2)
        engine.warm_up(lubm_queries()["L1"])
        first = engine._engine_for("ub:subOrganizationOf")
        second = engine._engine_for("ub:subOrganizationOf")
        assert first is second

    def test_clear_caches_on_baseline(self, lubm_store):
        engine = VirtuosoLikeEngine(lubm_store, warm=True)
        engine.execute(lubm_queries()["L1"])
        assert engine._memo
        engine.clear_caches()
        assert not engine._memo

    def test_result_decoding(self, lubm_store):
        engine = PropertyPathEngine(lubm_store, num_slaves=2)
        result = engine.execute("SELECT * WHERE { ?x rdf:type ub:FullProfessor }")
        decoded = result.decoded(lubm_store)
        assert all(row["?x"].endswith("prof0") for row in decoded)
