"""Tests for the benchmark harness (datasets, workloads, runner, reporting)."""

import pytest

from repro.bench.datasets import DATASETS, LARGE_DATASETS, SMALL_DATASETS, load_dataset
from repro.bench.reporting import format_series, format_table
from repro.bench.runner import ExperimentRunner
from repro.bench.workloads import query_size_sweep, random_query, random_vertex_sample
from repro.graph import generators


class TestDatasets:
    def test_registry_covers_paper_table1(self):
        assert set(SMALL_DATASETS) | set(LARGE_DATASETS) == set(DATASETS)
        assert "twitter" in LARGE_DATASETS
        assert "amazon" in SMALL_DATASETS

    @pytest.mark.parametrize("name", sorted(DATASETS))
    def test_every_dataset_builds(self, name):
        graph = load_dataset(name, scale=0.12, seed=1)
        assert graph.num_vertices > 0
        assert graph.num_edges > 0

    def test_scale_parameter(self):
        small = load_dataset("amazon", scale=0.2, seed=1)
        large = load_dataset("amazon", scale=0.5, seed=1)
        assert large.num_vertices > small.num_vertices

    def test_deterministic(self):
        a = load_dataset("google", scale=0.2, seed=3)
        b = load_dataset("google", scale=0.2, seed=3)
        assert set(a.edges()) == set(b.edges())

    def test_unknown_dataset(self):
        with pytest.raises(ValueError):
            load_dataset("imaginary")


class TestWorkloads:
    def test_random_vertex_sample_deterministic(self):
        graph = generators.random_digraph(80, 200, seed=1)
        assert random_vertex_sample(graph, 10, seed=5) == random_vertex_sample(
            graph, 10, seed=5
        )

    def test_sample_capped_at_graph_size(self):
        graph = generators.random_digraph(20, 40, seed=1)
        assert len(random_vertex_sample(graph, 100)) == 20

    def test_random_query_sizes(self):
        graph = generators.random_digraph(100, 250, seed=2)
        sources, targets = random_query(graph, 7, 9, seed=3)
        assert len(sources) == 7
        assert len(targets) == 9

    def test_query_size_sweep(self):
        graph = generators.random_digraph(100, 250, seed=2)
        sweep = query_size_sweep(graph, [5, 10, 20], seed=1)
        assert [size for size, _, _ in sweep] == [5, 10, 20]
        for size, sources, targets in sweep:
            assert len(sources) == size
            assert len(targets) == size


class TestRunner:
    @pytest.fixture(scope="class")
    def runner(self):
        graph = load_dataset("stanford", scale=0.15, seed=4)
        return ExperimentRunner(graph, num_partitions=3, local_index="msbfs", seed=4)

    def test_run_approach_individually(self, runner):
        graph = runner.graph
        sources, targets = random_query(graph, 5, 5, seed=2)
        result = runner.run_approach("dsr", sources, targets)
        assert result.approach == "dsr"
        assert result.index_seconds > 0
        assert result.query_seconds >= 0

    def test_consistency_check_across_approaches(self, runner):
        graph = runner.graph
        sources, targets = random_query(graph, 5, 5, seed=3)
        results = runner.run(
            ["dsr", "dsr-noeq", "giraph++", "giraph++weq", "dsr-fan"],
            sources,
            targets,
        )
        assert len(results) == 5
        pair_counts = {r.num_pairs for r in results}
        assert len(pair_counts) == 1

    def test_unknown_approach(self, runner):
        with pytest.raises(ValueError):
            runner.run_approach("magic", [0], [1])

    def test_engines_are_cached(self, runner):
        first = runner._build("dsr")
        second = runner._build("dsr")
        assert first is second

    def test_as_row_shape(self, runner):
        graph = runner.graph
        sources, targets = random_query(graph, 4, 4, seed=5)
        row = runner.run_approach("dsr", sources, targets).as_row()
        assert {"approach", "index_s", "query_s", "pairs", "messages"} <= set(row)


class TestReporting:
    def test_format_table_alignment(self):
        rows = [
            {"name": "dsr", "time": 0.123456, "pairs": 1000},
            {"name": "giraph", "time": 12.5, "pairs": 1000},
        ]
        text = format_table(rows, title="demo")
        lines = text.splitlines()
        assert lines[0] == "demo"
        assert "dsr" in text and "giraph" in text
        assert "1,000" in text

    def test_format_table_empty(self):
        assert "(no rows)" in format_table([], title="empty")

    def test_format_table_column_selection(self):
        rows = [{"a": 1, "b": 2}]
        text = format_table(rows, columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_format_series(self):
        text = format_series(
            {"dsr": [1.0, 2.0], "giraph": [10.0, 20.0]},
            x_values=[2, 4],
            x_label="slaves",
            title="scaling",
        )
        assert "slaves" in text
        assert "scaling" in text.splitlines()[0]
