"""Shared fixtures for the whole test suite."""

import pytest

from repro.graph import generators
from repro.partition.partition import GraphPartitioning


@pytest.fixture
def paper_example():
    """The Figure-1 running example: graph, partitioning and label lookup."""
    graph, assignment = generators.paper_example_graph()
    partitioning = GraphPartitioning(graph, assignment, 3)
    labels = {graph.label_of(vertex): vertex for vertex in graph.vertices()}
    return graph, partitioning, labels
