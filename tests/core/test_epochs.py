"""Epoch-versioned maintenance: atomic swaps, background flushes, executors.

The executor matrix honours ``REPRO_TEST_EXECUTORS`` (comma-separated subset
of ``serial,threads,processes``) so CI can pin the whole module to one
backend.
"""

import os
import random
import threading

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.graph import generators
from repro.graph.digraph import DiGraph

EXECUTORS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_TEST_EXECUTORS", "serial,threads,processes"
    ).split(",")
    if name.strip()
)


def _bridge_graph():
    """A graph whose query answer flips all-or-nothing on one bridge edge.

    ``SOURCE → BRIDGE`` is the bridge; ``BRIDGE`` fans out to every target.
    With the bridge present the answer is every ``(SOURCE, t)`` pair, without
    it the answer is empty — so a torn (half-merged) index state is directly
    observable as a partial answer.
    """
    graph = DiGraph.from_edges(
        [(1, 10), (1, 11), (1, 12), (1, 13), (10, 20), (11, 21), (12, 22), (13, 23)]
    )
    graph.add_vertex(0)
    return graph


BRIDGE_QUERY = ReachQuery((0,), (20, 21, 22, 23))
FULL_ANSWER = {(0, 20), (0, 21), (0, 22), (0, 23)}


class TestEpochLifecycle:
    def test_build_publishes_epoch_zero(self):
        engine = open_engine(generators.social_graph(60, seed=1), DSRConfig(num_partitions=3))
        assert engine.epoch == 0
        assert engine.index.current_state().epoch == 0

    def test_flush_bumps_epoch(self):
        engine = open_engine(_bridge_graph(), DSRConfig(num_partitions=3, partitioner="hash"))
        engine.insert_edge(0, 1)
        flush = engine.flush_updates()
        assert flush.epoch == 1
        assert engine.epoch == 1

    def test_noop_flush_keeps_epoch(self):
        engine = open_engine(_bridge_graph(), DSRConfig(num_partitions=3, partitioner="hash"))
        flush = engine.flush_updates()
        assert flush.epoch == 0
        assert engine.epoch == 0

    def test_inline_query_folds_updates_and_reports_epoch(self):
        engine = open_engine(_bridge_graph(), DSRConfig(num_partitions=3, partitioner="hash"))
        assert engine.run(BRIDGE_QUERY).pairs == set()
        engine.insert_edge(0, 1)
        result = engine.run(BRIDGE_QUERY)
        assert result.pairs == FULL_ANSWER
        assert result.epoch == engine.epoch == 1

    def test_query_result_as_dict_carries_epoch_and_real_seconds(self):
        engine = open_engine(_bridge_graph(), DSRConfig(num_partitions=2, partitioner="hash"))
        payload = engine.run(BRIDGE_QUERY).as_dict()
        assert payload["epoch"] == 0
        assert payload["real_seconds"] >= 0.0


@pytest.mark.parametrize("executor", EXECUTORS)
class TestExecutorParity:
    """Every executor must answer every query identically."""

    def test_random_graph_parity(self, executor):
        graph = generators.social_graph(250, avg_degree=5, seed=11)
        reference = open_engine(graph, DSRConfig(num_partitions=4, local_index="msbfs"))
        engine = open_engine(
            graph,
            DSRConfig(num_partitions=4, local_index="msbfs", executor=executor),
        )
        rng = random.Random(5)
        vertices = sorted(graph.vertices())
        try:
            for _ in range(8):
                sources = tuple(rng.sample(vertices, 6))
                targets = tuple(rng.sample(vertices, 6))
                query = ReachQuery(sources, targets)
                assert engine.run(query).pairs == reference.run(query).pairs
        finally:
            engine.close()

    def test_parity_survives_updates_and_flushes(self, executor):
        graph = generators.social_graph(200, avg_degree=4, seed=8)
        reference = open_engine(graph, DSRConfig(num_partitions=3, local_index="msbfs"))
        engine = open_engine(
            graph,
            DSRConfig(num_partitions=3, local_index="msbfs", executor=executor),
        )
        try:
            edges = list(graph.edges())[:4]
            for u, v in edges:
                engine.delete_edge(u, v)
                reference.delete_edge(u, v)
            query = ReachQuery(tuple(range(0, 20)), tuple(range(100, 130)))
            assert engine.run(query).pairs == reference.run(query).pairs
            for u, v in edges:
                engine.insert_edge(u, v)
                reference.insert_edge(u, v)
            assert engine.run(query).pairs == reference.run(query).pairs
        finally:
            engine.close()

    def test_backward_processing_parity(self, executor):
        """The reverse index shares the cluster but never the worker shards;
        forward and backward answers must agree on every executor."""
        graph = generators.social_graph(150, avg_degree=4, seed=6)
        engine = open_engine(
            graph,
            DSRConfig(
                num_partitions=3,
                local_index="msbfs",
                executor=executor,
                enable_backward=True,
            ),
        )
        try:
            sources = tuple(range(0, 30))
            targets = (100, 101)
            forward = engine.run(ReachQuery(sources, targets, direction="forward"))
            backward = engine.run(ReachQuery(sources, targets, direction="backward"))
            assert forward.pairs == backward.pairs
        finally:
            engine.close()

    def test_inserted_vertex_is_queryable(self, executor):
        graph = generators.social_graph(120, avg_degree=4, seed=3)
        engine = open_engine(
            graph,
            DSRConfig(num_partitions=3, local_index="msbfs", executor=executor),
        )
        try:
            vertex = engine.insert_vertex()
            result = engine.run(ReachQuery((vertex,), (vertex,)))
            assert result.pairs == {(vertex, vertex)}
        finally:
            engine.close()


@pytest.mark.parametrize("executor", EXECUTORS)
class TestBackgroundEpochFlush:
    def _engine(self, executor):
        return open_engine(
            _bridge_graph(),
            DSRConfig(
                num_partitions=3,
                partitioner="hash",
                epoch_flush="background",
                executor=executor,
            ),
        )

    def test_query_mid_flush_sees_the_published_epoch(self, executor):
        """While epoch N+1 is built, queries still get epoch N — unblocked."""
        engine = self._engine(executor)
        try:
            assert engine.run(BRIDGE_QUERY).pairs == set()
            entered = threading.Event()
            hold = threading.Event()

            def stall_before_publish(state):
                entered.set()
                assert hold.wait(timeout=10), "test released the flush too late"

            engine.maintainer._before_publish = stall_before_publish
            engine.insert_edge(0, 1)  # structural: schedules a background flush
            assert entered.wait(timeout=10), "background flush never started"

            # The flush is mid-build (epoch 1 exists but is unpublished):
            # queries must neither block nor see any of the new edge.
            result = engine.run(BRIDGE_QUERY)
            assert result.epoch == 0
            assert result.pairs == set()

            hold.set()
            assert engine.wait_for_maintenance(timeout=10)
            after = engine.run(BRIDGE_QUERY)
            assert after.epoch == 1
            assert after.pairs == FULL_ANSWER
        finally:
            engine.maintainer._before_publish = None
            engine.close()

    def test_concurrent_queries_and_updates_never_tear(self, executor):
        """Hammer: every answer is all-or-nothing — epoch N or N+1, never a mix."""
        engine = self._engine(executor)
        errors = []
        stop = threading.Event()

        def querier():
            try:
                while not stop.is_set():
                    result = engine.run(BRIDGE_QUERY)
                    assert result.pairs in (set(), FULL_ANSWER), (
                        f"torn answer at epoch {result.epoch}: {result.pairs}"
                    )
            except BaseException as exc:  # pragma: no cover - failure path
                errors.append(exc)

        threads = [threading.Thread(target=querier) for _ in range(3)]
        for thread in threads:
            thread.start()
        try:
            for _ in range(6):
                engine.insert_edge(0, 1)
                engine.wait_for_maintenance(timeout=10)
                engine.delete_edge(0, 1)
                engine.wait_for_maintenance(timeout=10)
        finally:
            stop.set()
            for thread in threads:
                thread.join(timeout=10)
        assert not errors, errors[0]
        assert engine.maintainer.background_flush_error is None
        engine.close()

    def test_vertex_inserted_during_flush_survives_the_swap(self, executor):
        """An isolated-vertex insert racing an in-flight flush must not be
        lost when that flush publishes its (pre-insert) snapshot."""
        engine = self._engine(executor)
        try:
            entered = threading.Event()
            hold = threading.Event()

            def stall(state):
                entered.set()
                assert hold.wait(timeout=10)

            engine.maintainer._before_publish = stall
            engine.insert_edge(0, 1)  # schedules the flush we race against
            assert entered.wait(timeout=10)
            vertex = engine.insert_vertex()  # lands mid-flush
            hold.set()
            engine.maintainer._before_publish = None
            assert engine.wait_for_maintenance(timeout=10)
            result = engine.run(ReachQuery((vertex,), (vertex,)))
            assert result.pairs == {(vertex, vertex)}
        finally:
            engine.maintainer._before_publish = None
            engine.close()

    def test_split_survives_vertex_deleted_after_capture(self, executor):
        """A vertex deletion racing a lock-free query (after the query
        captured its epoch, before it split) must not crash the split: the
        query answers from its captured epoch, where the vertex exists."""
        from repro.cluster.cluster import ClusterStats
        from repro.cluster.network import Network

        engine = self._engine(executor)
        try:
            engine.insert_edge(0, 1)
            assert engine.wait_for_maintenance(timeout=10)
            state = engine.index.current_state()
            engine.delete_vertex(1)  # racing deletion on the live graph
            # Simulate the query that already captured `state`:
            pairs = engine._executor._execute(
                state, {0}, {20, 21, 22, 23}, Network(), ClusterStats(),
                sharded=False,
            )
            assert pairs == FULL_ANSWER  # epoch-N answer, vertex still routed
            assert engine.wait_for_maintenance(timeout=10)
        finally:
            engine.close()

    def test_epoch_advances_once_per_coalesced_batch(self, executor):
        engine = self._engine(executor)
        try:
            engine.insert_edge(0, 1)
            engine.delete_edge(1, 10)
            assert engine.wait_for_maintenance(timeout=10)
            # Both updates fold into at most two epochs (coalescing), and the
            # final answer reflects every applied update.
            assert engine.epoch >= 1
            result = engine.run(BRIDGE_QUERY)
            assert result.pairs == FULL_ANSWER - {(0, 20)}
        finally:
            engine.close()
