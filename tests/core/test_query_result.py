"""Tests for QueryResult.swapped() and the engine's empty-query short-circuit."""

import dataclasses

import pytest

from repro.api import DSRConfig, ReachQuery, open_engine
from repro.core.fan import FanQueryResult
from repro.core.query import QueryResult
from repro.graph import generators


class TestSwapped:
    def test_pairs_are_flipped(self):
        result = QueryResult(pairs={(1, 2), (3, 4)})
        assert result.swapped().pairs == {(2, 1), (4, 3)}

    def test_every_stats_field_is_preserved(self):
        result = QueryResult(
            pairs={(1, 2)},
            parallel_seconds=0.5,
            total_seconds=1.5,
            messages_sent=7,
            bytes_sent=512,
            rounds=2,
            per_phase_seconds={"local": 0.25},
        )
        swapped = result.swapped()
        for spec in dataclasses.fields(QueryResult):
            if spec.name == "pairs":
                continue
            assert getattr(swapped, spec.name) == getattr(result, spec.name), spec.name

    def test_subclass_fields_survive(self):
        # dataclasses.replace keeps the runtime type, so stats fields added by
        # subclasses (or in the future) cannot silently be dropped.
        result = FanQueryResult(
            pairs={(1, 2)}, dependency_graph_edges=9, dependency_graph_vertices=4
        )
        swapped = result.swapped()
        assert isinstance(swapped, FanQueryResult)
        assert swapped.dependency_graph_edges == 9
        assert swapped.dependency_graph_vertices == 4

    def test_double_swap_is_identity_on_pairs(self):
        result = QueryResult(pairs={(1, 2), (5, 5)})
        assert result.swapped().swapped().pairs == result.pairs


class TestBackwardStatsViaSwapped:
    def test_backward_query_keeps_statistics(self):
        graph = generators.web_graph(120, avg_degree=5, seed=8)
        engine = open_engine(
            graph,
            DSRConfig(num_partitions=3, local_index="msbfs", enable_backward=True),
        )
        vertices = sorted(graph.vertices())
        forward = engine.run(
            ReachQuery(tuple(vertices[:12]), tuple(vertices[12:18]), direction="forward")
        )
        backward = engine.run(
            ReachQuery(tuple(vertices[:12]), tuple(vertices[12:18]), direction="backward")
        )
        assert backward.pairs == forward.pairs
        assert backward.rounds == 1
        assert backward.per_phase_seconds  # not dropped by the swap


class TestEmptyQueryShortCircuit:
    @pytest.fixture(scope="class")
    def engine(self):
        graph = generators.random_digraph(40, 100, seed=4)
        return open_engine(graph, DSRConfig(num_partitions=3))

    @pytest.mark.parametrize("sources,targets", [((), (1, 2)), ((1, 2), ()), ((), ())])
    def test_empty_side_returns_empty_result(self, engine, sources, targets):
        result = engine.run(ReachQuery(sources, targets))
        assert result.pairs == set()
        # The distributed pipeline never ran: no rounds, no messages.
        assert result.rounds == 0
        assert result.messages_sent == 0
        assert engine.last_query_result is result

    def test_short_circuit_skips_pending_flush(self, engine):
        engine.insert_edge(0, 1)
        assert engine.has_pending_updates
        engine.run(ReachQuery((), (1,)))
        # The empty answer is correct regardless of pending updates, so the
        # short-circuit must not pay for a flush.
        assert engine.has_pending_updates
        engine.run(ReachQuery((0,), (1,)))
        assert not engine.has_pending_updates

    def test_empty_query_before_build_still_raises(self):
        graph = generators.random_digraph(10, 20, seed=1)
        from repro.core.engine import DSREngine

        engine = DSREngine.from_config(graph, DSRConfig(num_partitions=2))
        with pytest.raises(RuntimeError):
            engine.run(ReachQuery((), ()))

    def test_run_rejects_positional_style(self, engine):
        with pytest.raises(TypeError, match="ReachQuery"):
            engine.run([0, 1])
