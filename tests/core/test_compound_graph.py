"""Tests for compound graphs (Definition 6) and Theorem 1."""

import pytest

from repro.core.compound_graph import CondensedReachability, build_compound_graph
from repro.core.equivalence import ClassIdAllocator
from repro.core.summary import build_partition_summary
from repro.graph import generators
from repro.graph.traversal import is_reachable
from repro.partition.partition import make_partitioning
from repro.reachability.transitive_closure import TransitiveClosureIndex


def build_all(graph, partitioning, use_equivalence=True, strategy="dfs"):
    allocator = ClassIdAllocator(10 * (max(graph.vertices()) + 1))
    summaries = {
        pid: build_partition_summary(
            partition_id=pid,
            local_graph=partitioning.local_subgraph(pid),
            in_boundaries=partitioning.in_boundaries(pid),
            out_boundaries=partitioning.out_boundaries(pid),
            allocator=allocator,
            use_equivalence=use_equivalence,
        )
        for pid in range(partitioning.num_partitions)
    }
    compounds = {
        pid: build_compound_graph(
            pid,
            partitioning.local_subgraph(pid),
            summaries,
            partitioning.cut_edges(),
            local_strategy=strategy,
        )
        for pid in range(partitioning.num_partitions)
    }
    return summaries, compounds


class TestCondensedReachability:
    def test_matches_uncompressed_reachability(self):
        graph = generators.social_graph(120, avg_degree=6, reciprocity=0.4, seed=2)
        condensed = CondensedReachability(graph, strategy="dfs")
        truth = TransitiveClosureIndex(graph)
        for s in range(0, 120, 11):
            for t in range(5, 120, 13):
                assert condensed.reachable(s, t) == truth.reachable(s, t)

    def test_set_reachability_interface(self):
        graph = generators.cycle_graph(6)
        condensed = CondensedReachability(graph, strategy="msbfs")
        result = condensed.set_reachability([0, 3], [2, 5])
        assert result[0] == {2, 5}
        assert result[3] == {2, 5}

    def test_unknown_vertices_ignored(self):
        graph = generators.path_graph(4)
        condensed = CondensedReachability(graph)
        assert not condensed.reachable(0, 77)
        assert condensed.set_reachability([77], [0]) == {77: set()}

    def test_dag_smaller_than_original_for_cyclic_graph(self):
        graph = generators.social_graph(200, avg_degree=8, reciprocity=0.6, seed=3)
        condensed = CondensedReachability(graph)
        assert condensed.dag_num_vertices < graph.num_vertices
        assert condensed.dag_num_edges < graph.num_edges


class TestCompoundGraphConstruction:
    def test_contains_local_subgraph(self, paper_example):
        graph, partitioning, labels = paper_example
        _, compounds = build_all(graph, partitioning)
        compound = compounds[0]
        local = partitioning.local_subgraph(0)
        for u, v in local.edges():
            assert compound.graph.has_edge(u, v)
        assert compound.local_vertices == set(local.vertices())

    def test_contains_cut_edges(self, paper_example):
        graph, partitioning, labels = paper_example
        _, compounds = build_all(graph, partitioning)
        for pid in range(3):
            for u, v in partitioning.cut_edges():
                assert compounds[pid].graph.has_edge(u, v)

    def test_remote_handles_registered(self, paper_example):
        graph, partitioning, labels = paper_example
        summaries, compounds = build_all(graph, partitioning)
        compound = compounds[0]
        assert set(compound.remote_forward_handles) == {1, 2}
        assert compound.forward_handles_of(1) == summaries[1].forward_handles()
        assert compound.forward_handles_of(0) == set()

    def test_paper_example7_theorem1(self, paper_example):
        """b ⇝ f is not answerable inside G1 but is on the compound graph."""
        graph, partitioning, labels = paper_example
        _, compounds = build_all(graph, partitioning)
        local = partitioning.local_subgraph(0)
        assert not is_reachable(local, labels["b"], labels["f"])
        reach = compounds[0].local_set_reachability([labels["b"]], [labels["f"]])
        assert labels["f"] in reach[labels["b"]]

    @pytest.mark.parametrize("use_equivalence", [True, False])
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_theorem1_local_pairs_on_random_graphs(self, use_equivalence, seed):
        """Reachability between two co-located vertices needs only G^C_i."""
        graph = generators.random_digraph(60, 170, seed=seed)
        partitioning = make_partitioning(graph, 3, strategy="hash", seed=seed)
        _, compounds = build_all(graph, partitioning, use_equivalence)
        truth = TransitiveClosureIndex(graph)
        for pid in range(3):
            local_vertices = sorted(partitioning.vertices_of(pid))[:8]
            compound = compounds[pid]
            reach = compound.local_set_reachability(local_vertices, local_vertices)
            for s in local_vertices:
                for t in local_vertices:
                    assert (t in reach[s]) == truth.reachable(s, t), (
                        f"seed={seed} pid={pid} {s}->{t}"
                    )

    def test_compound_graph_soundness(self):
        """Every edge of a compound graph reflects true global reachability."""
        graph = generators.random_digraph(50, 150, seed=7)
        partitioning = make_partitioning(graph, 3, strategy="hash", seed=7)
        summaries, compounds = build_all(graph, partitioning)
        truth = TransitiveClosureIndex(graph)
        class_info = {}
        for summary in summaries.values():
            for cls in list(summary.forward_classes) + list(summary.backward_classes):
                class_info[cls.class_id] = cls
        for compound in compounds.values():
            for u, v in compound.graph.edges():
                concrete_u = (
                    class_info[u].members if u in class_info else [u]
                )
                concrete_v = (
                    class_info[v].members if v in class_info else [v]
                )
                # At least one concrete pair behind the edge must be truly
                # reachable; for class-level edges the equivalence guarantees
                # they then all are.
                assert any(
                    truth.reachable(cu, cv)
                    for cu in concrete_u
                    for cv in concrete_v
                )

    def test_size_statistics(self, paper_example):
        graph, partitioning, labels = paper_example
        _, compounds = build_all(graph, partitioning)
        compound = compounds[0]
        assert compound.original_num_edges() > 0
        assert compound.dag_num_edges() <= compound.original_num_edges()
        assert compound.estimated_bytes() > 0
