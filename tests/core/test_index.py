"""Tests for the DSRIndex build (phases, statistics, Table-2/4 numbers)."""

import pytest

from repro.core.index import DSRIndex
from repro.graph import generators
from repro.partition.partition import make_partitioning


@pytest.fixture
def built_index(paper_example):
    _, partitioning, _ = paper_example
    index = DSRIndex(partitioning, use_equivalence=True, local_strategy="dfs")
    index.build()
    return index


class TestBuild:
    def test_build_produces_all_artifacts(self, built_index):
        index = built_index
        assert index.is_built
        assert set(index.summaries) == {0, 1, 2}
        assert set(index.compound_graphs) == {0, 1, 2}
        assert set(index.local_graphs) == {0, 1, 2}

    def test_build_report_fields(self, built_index):
        report = built_index.build_report
        assert report.max_original_edges > 0
        assert report.max_dag_edges > 0
        assert report.total_bytes > 0
        assert report.summary_bytes > 0
        assert report.build_seconds >= report.parallel_build_seconds >= 0

    def test_single_broadcast_round(self, built_index):
        # The index build performs exactly one all-to-all summary exchange.
        assert built_index.cluster.network.stats.rounds == 1

    def test_virtual_ids_above_real_ids(self, built_index, paper_example):
        graph, _, _ = paper_example
        highest = max(graph.vertices())
        for summary in built_index.summaries.values():
            for cls in list(summary.forward_classes) + list(summary.backward_classes):
                assert cls.class_id > highest

    def test_query_before_build_raises(self, paper_example):
        _, partitioning, _ = paper_example
        index = DSRIndex(partitioning)
        from repro.core.query import DistributedQueryExecutor

        with pytest.raises(RuntimeError):
            DistributedQueryExecutor(index)

    def test_index_sizes_requires_build(self, paper_example):
        _, partitioning, _ = paper_example
        index = DSRIndex(partitioning)
        with pytest.raises(RuntimeError):
            index.index_sizes()


class TestStatistics:
    def test_boundary_stats_per_partition(self, built_index):
        stats = built_index.boundary_stats(0)
        assert stats.num_vertices > 0
        assert stats.num_edges > 0
        # Partitions 2 and 3 contribute their entry handles.
        assert stats.num_forward_entries > 0
        assert stats.num_backward_entries > 0

    def test_total_boundary_entries_shrink_with_equivalence(self, paper_example):
        _, partitioning, _ = paper_example
        with_eq = DSRIndex(partitioning, use_equivalence=True)
        with_eq.build()
        without_eq = DSRIndex(partitioning, use_equivalence=False)
        without_eq.build()
        eq_forward, eq_backward = with_eq.total_boundary_entries()
        plain_forward, plain_backward = without_eq.total_boundary_entries()
        assert eq_forward <= plain_forward
        assert eq_backward <= plain_backward

    def test_scc_condensation_shrinks_dense_graphs(self):
        """Table 2's observation: highly connected graphs condense strongly."""
        graph = generators.social_graph(300, avg_degree=10, reciprocity=0.6, seed=9)
        partitioning = make_partitioning(graph, 4, strategy="metis", seed=9)
        index = DSRIndex(partitioning)
        report = index.build()
        assert report.max_dag_edges < report.max_original_edges

    def test_sparse_acyclic_graph_barely_condenses(self):
        """LUBM-style graphs barely benefit from SCC condensation."""
        graph = generators.hierarchy_graph(300, extra_edge_fraction=0.05, seed=9)
        partitioning = make_partitioning(graph, 4, strategy="metis", seed=9)
        index = DSRIndex(partitioning)
        report = index.build()
        assert report.max_dag_edges >= 0.5 * report.max_original_edges


class TestSummaryStrategyOption:
    def test_custom_summary_strategy(self, paper_example):
        _, partitioning, _ = paper_example
        index = DSRIndex(partitioning, summary_strategy="dfs")
        index.build()
        assert index.is_built

    def test_custom_local_strategy_kwargs(self, paper_example):
        _, partitioning, _ = paper_example
        index = DSRIndex(
            partitioning, local_strategy="ferrari", strategy_kwargs={"max_intervals": 2}
        )
        index.build()
        assert index.is_built
