"""Tests for the DSR-Fan and DSR-Naïve baselines (Sections 3.1 / 3.2)."""

import random

import pytest

from repro.core.engine import DSREngine
from repro.core.fan import DSRFan
from repro.core.naive import DSRNaive
from repro.graph import generators
from repro.graph.traversal import reachable_pairs
from repro.partition.partition import make_partitioning


@pytest.fixture
def random_setting():
    graph = generators.random_digraph(70, 200, seed=3)
    partitioning = make_partitioning(graph, 4, strategy="hash", seed=3)
    rng = random.Random(2)
    vertices = sorted(graph.vertices())
    sources = rng.sample(vertices, 7)
    targets = rng.sample(vertices, 7)
    return graph, partitioning, sources, targets


class TestDSRFan:
    def test_matches_ground_truth(self, random_setting):
        graph, partitioning, sources, targets = random_setting
        fan = DSRFan(partitioning)
        assert fan.query(sources, targets).pairs == reachable_pairs(
            graph, sources, targets
        )

    def test_matches_paper_example3(self, paper_example):
        graph, partitioning, labels = paper_example
        fan = DSRFan(partitioning)
        sources = [labels[x] for x in ("a", "d", "g")]
        targets = [labels[x] for x in ("l", "p")]
        pairs = fan.query(sources, targets).pairs
        assert {(graph.label_of(s), graph.label_of(t)) for s, t in pairs} == {
            (s, t) for s in ("a", "d", "g") for t in ("l", "p")
        }

    def test_dependency_graph_recorded(self, random_setting):
        graph, partitioning, sources, targets = random_setting
        fan = DSRFan(partitioning)
        result = fan.query(sources, targets)
        assert result.dependency_graph_edges > 0
        assert fan.last_dependency_edges == result.dependency_graph_edges

    def test_single_pair_api(self, paper_example):
        graph, partitioning, labels = paper_example
        fan = DSRFan(partitioning)
        assert fan.reachable(labels["b"], labels["f"])
        assert not fan.reachable(labels["k"], labels["a"])

    def test_one_round_of_communication(self, random_setting):
        _, partitioning, sources, targets = random_setting
        fan = DSRFan(partitioning)
        assert fan.query(sources, targets).rounds == 1

    def test_dependency_graph_is_query_specific(self, random_setting):
        """Fan rebuilds its dependency graph per query (the cost DSR removes)."""
        graph, partitioning, sources, targets = random_setting
        fan = DSRFan(partitioning)
        first = fan.query(sources[:2], targets[:2]).dependency_graph_edges
        second = fan.query(sources, targets).dependency_graph_edges
        assert second >= first


class TestDSRNaive:
    def test_matches_ground_truth(self, random_setting):
        graph, partitioning, sources, targets = random_setting
        naive = DSRNaive(partitioning)
        assert naive.query(sources[:4], targets[:4]).pairs == reachable_pairs(
            graph, sources[:4], targets[:4]
        )

    def test_per_pair_cost_accumulates(self, random_setting):
        _, partitioning, sources, targets = random_setting
        naive = DSRNaive(partitioning)
        result = naive.query(sources[:3], targets[:3])
        # One dependency graph (and hence one round) per (s, t) pair.
        assert result.rounds == 9
        assert naive.last_average_dependency_edges > 0

    def test_single_pair_api(self, paper_example):
        graph, partitioning, labels = paper_example
        naive = DSRNaive(partitioning)
        assert naive.reachable(labels["d"], labels["q"])


class TestBaselinesAgreeWithDSR:
    @pytest.mark.parametrize("seed", [1, 2, 3])
    def test_all_three_agree(self, seed):
        graph = generators.web_graph(80, avg_degree=5, seed=seed)
        partitioning = make_partitioning(graph, 3, strategy="metis", seed=seed)
        rng = random.Random(seed)
        vertices = sorted(graph.vertices())
        sources = rng.sample(vertices, 5)
        targets = rng.sample(vertices, 5)

        engine = DSREngine(graph, partitioning=partitioning, local_index="msbfs")
        engine.build_index()
        fan = DSRFan(partitioning)
        naive = DSRNaive(partitioning)

        expected = reachable_pairs(graph, sources, targets)
        assert engine.query(sources, targets) == expected
        assert fan.query(sources, targets).pairs == expected
        assert naive.query(sources, targets).pairs == expected
