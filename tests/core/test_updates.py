"""Tests for incremental index maintenance (Section 3.3.3)."""

import random

import pytest

from repro.core.engine import DSREngine
from repro.graph import generators
from repro.graph.digraph import DiGraph
from repro.graph.traversal import reachable_pairs


def fresh_engine(graph, num_partitions=3, seed=1, **kwargs):
    engine = DSREngine(
        graph, num_partitions=num_partitions, partitioner="hash", seed=seed, **kwargs
    )
    engine.build_index()
    return engine


class TestEdgeInsertion:
    def test_cross_partition_insertion_changes_answers(self, paper_example):
        graph, partitioning, labels = paper_example
        engine = DSREngine(graph, partitioning=partitioning, local_index="dfs")
        engine.build_index()
        # k is a sink: it cannot reach a.  Adding k -> d (cut edge) changes that.
        assert not engine.reachable(labels["k"], labels["a"])
        result = engine.insert_edge(labels["k"], labels["d"])
        assert result.structural_change
        assert engine.reachable(labels["k"], labels["a"])

    def test_local_insertion_changes_answers(self, paper_example):
        graph, partitioning, labels = paper_example
        engine = DSREngine(graph, partitioning=partitioning, local_index="dfs")
        engine.build_index()
        assert not engine.reachable(labels["v"], labels["q"])
        engine.insert_edge(labels["v"], labels["p"])  # local edge inside G3
        assert engine.reachable(labels["v"], labels["q"])

    def test_same_scc_insertion_is_cheap(self):
        graph = generators.cycle_graph(12)
        engine = fresh_engine(graph, num_partitions=2)
        # All vertices are in one SCC per partition after the compound build?
        # Pick two vertices of the same partition that already reach each other.
        partitioning = engine.partitioning
        partition_zero = sorted(partitioning.vertices_of(0))
        u, v = partition_zero[0], partition_zero[-1]
        result = engine.insert_edge(u, v)
        assert not engine.has_pending_updates or result.structural_change

    def test_duplicate_insertion_is_noop(self):
        graph = generators.random_digraph(40, 120, seed=2)
        engine = fresh_engine(graph)
        u, v = next(iter(graph.edges()))
        result = engine.insert_edge(u, v)
        assert not result.structural_change
        assert result.affected_partitions == set()

    def test_insert_with_unknown_vertex_raises(self):
        graph = generators.random_digraph(30, 80, seed=3)
        engine = fresh_engine(graph)
        with pytest.raises(ValueError):
            engine.insert_edge(0, 10_000)

    @pytest.mark.parametrize("use_equivalence", [True, False])
    def test_batch_insertions_match_full_rebuild(self, use_equivalence):
        full = generators.web_graph(150, avg_degree=5, seed=11)
        edges = sorted(full.edges())
        rng = random.Random(4)
        rng.shuffle(edges)
        held_out = edges[:30]
        base = DiGraph.from_edges(edges[30:], vertices=full.vertices())

        engine = DSREngine(
            base,
            num_partitions=3,
            partitioner="hash",
            seed=2,
            local_index="msbfs",
            use_equivalence=use_equivalence,
        )
        engine.build_index()
        for u, v in held_out:
            engine.insert_edge(u, v)

        vertices = sorted(full.vertices())
        sources = rng.sample(vertices, 10)
        targets = rng.sample(vertices, 10)
        assert engine.query(sources, targets) == reachable_pairs(full, sources, targets)


class TestEdgeDeletion:
    def test_deleting_bridge_disconnects(self):
        graph = generators.path_graph(10)
        engine = fresh_engine(graph, num_partitions=2)
        assert engine.reachable(0, 9)
        engine.delete_edge(4, 5)
        assert not engine.reachable(0, 9)
        assert engine.reachable(0, 4)

    def test_delete_missing_edge_is_noop(self):
        graph = generators.random_digraph(30, 60, seed=5)
        engine = fresh_engine(graph)
        result = engine.delete_edge(0, 0)
        assert not result.structural_change

    def test_batch_deletions_match_full_rebuild(self):
        full = generators.web_graph(140, avg_degree=5, seed=13)
        engine = fresh_engine(full.copy(), num_partitions=3, local_index="msbfs")
        edges = sorted(full.edges())
        rng = random.Random(6)
        rng.shuffle(edges)
        removed = edges[:25]
        for u, v in removed:
            engine.delete_edge(u, v)

        remaining = DiGraph.from_edges(
            [e for e in full.edges() if e not in set(removed)], vertices=full.vertices()
        )
        vertices = sorted(full.vertices())
        sources = rng.sample(vertices, 10)
        targets = rng.sample(vertices, 10)
        assert engine.query(sources, targets) == reachable_pairs(
            remaining, sources, targets
        )

    def test_cut_edge_deletion(self, paper_example):
        graph, partitioning, labels = paper_example
        engine = DSREngine(graph, partitioning=partitioning, local_index="dfs")
        engine.build_index()
        # o -> f is the only way back into G1; deleting it cuts p off from a.
        assert engine.reachable(labels["p"], labels["a"])
        engine.delete_edge(labels["o"], labels["f"])
        assert not engine.reachable(labels["p"], labels["a"])


class TestVertexUpdates:
    def test_insert_vertex_then_connect(self):
        graph = generators.random_digraph(30, 80, seed=7)
        engine = fresh_engine(graph)
        new_vertex = engine.insert_vertex()
        assert graph.has_vertex(new_vertex)
        engine.insert_edge(new_vertex, sorted(graph.vertices())[0])
        assert engine.reachable(new_vertex, sorted(graph.vertices())[0])

    def test_insert_vertex_explicit_partition(self):
        graph = generators.random_digraph(30, 80, seed=8)
        engine = fresh_engine(graph)
        new_vertex = engine.insert_vertex(partition_id=1)
        assert engine.partitioning.partition_of(new_vertex) == 1

    def test_insert_existing_vertex_rejected(self):
        graph = generators.random_digraph(30, 80, seed=8)
        engine = fresh_engine(graph)
        existing = sorted(graph.vertices())[0]
        original_partition = engine.partitioning.partition_of(existing)
        with pytest.raises(ValueError):
            engine.insert_vertex(existing, partition_id=original_partition + 1)
        # The failed insert must not have reassigned the vertex.
        assert engine.partitioning.partition_of(existing) == original_partition

    def test_delete_vertex_removes_paths_through_it(self):
        graph = generators.path_graph(8)
        engine = fresh_engine(graph, num_partitions=2)
        assert engine.reachable(0, 7)
        engine.delete_vertex(4)
        assert not engine.reachable(0, 7)
        assert not graph.has_vertex(4)


class TestDeferredMaintenance:
    def test_updates_are_batched_until_flush(self):
        graph = generators.random_digraph(50, 140, seed=9)
        engine = fresh_engine(graph)
        vertices = sorted(graph.vertices())
        engine.insert_edge(vertices[0], vertices[-1])
        assert engine.has_pending_updates
        flush = engine.flush_updates()
        assert not engine.has_pending_updates
        assert flush.refreshed_partitions

    def test_query_auto_flushes(self):
        graph = generators.random_digraph(50, 140, seed=10)
        engine = fresh_engine(graph)
        vertices = sorted(graph.vertices())
        engine.insert_edge(vertices[0], vertices[-1])
        assert engine.has_pending_updates
        engine.query([vertices[0]], [vertices[-1]])
        assert not engine.has_pending_updates

    def test_flush_without_changes_is_noop(self):
        graph = generators.random_digraph(30, 60, seed=11)
        engine = fresh_engine(graph)
        flush = engine.flush_updates()
        assert flush.refreshed_partitions == set()

    def test_updates_require_built_index(self):
        graph = generators.random_digraph(20, 40, seed=12)
        engine = DSREngine(graph, num_partitions=2)
        with pytest.raises(RuntimeError):
            engine.insert_edge(0, 1)
