"""DSR query evaluation on the paper's running example (Examples 2, 3, 7-9)."""

import pytest

from repro.core.engine import DSREngine


@pytest.fixture(params=[True, False], ids=["with-eq", "no-eq"])
def engine(request, paper_example):
    graph, partitioning, labels = paper_example
    engine = DSREngine(
        graph,
        partitioning=partitioning,
        local_index="dfs",
        use_equivalence=request.param,
    )
    engine.build_index()
    return engine, labels


def as_labels(graph, pairs):
    return {(graph.label_of(s), graph.label_of(t)) for s, t in pairs}


class TestSingleReachability:
    def test_example2_d_reaches_q(self, engine):
        eng, labels = engine
        assert eng.reachable(labels["d"], labels["q"])

    def test_example7_b_reaches_f_across_partitions(self, engine):
        eng, labels = engine
        assert eng.reachable(labels["b"], labels["f"])

    def test_example8_a_reaches_q(self, engine):
        eng, labels = engine
        assert eng.reachable(labels["a"], labels["q"])

    def test_non_reachable_pair(self, engine):
        eng, labels = engine
        # k is a sink inside G2; it cannot reach anything else.
        assert not eng.reachable(labels["k"], labels["a"])

    def test_self_reachability(self, engine):
        eng, labels = engine
        assert eng.reachable(labels["v"], labels["v"])


class TestSetReachability:
    def test_example3_query(self, engine, paper_example):
        graph, _, _ = paper_example
        eng, labels = engine
        sources = [labels[x] for x in ("a", "d", "g")]
        targets = [labels[x] for x in ("l", "p")]
        pairs = eng.query(sources, targets)
        assert as_labels(graph, pairs) == {
            ("a", "l"),
            ("a", "p"),
            ("d", "l"),
            ("d", "p"),
            ("g", "l"),
            ("g", "p"),
        }

    def test_example9_query(self, engine, paper_example):
        graph, _, _ = paper_example
        eng, labels = engine
        sources = [labels[x] for x in ("d", "l", "p")]
        targets = [labels[x] for x in ("a", "k", "q")]
        pairs = eng.query(sources, targets)
        assert as_labels(graph, pairs) == {
            (s, t) for s in ("d", "l", "p") for t in ("a", "k", "q")
        }

    def test_boundary_vertices_as_targets(self, engine, paper_example):
        graph, _, _ = paper_example
        eng, labels = engine
        # Targets m, n, o, i are boundary vertices of remote partitions.
        pairs = eng.query(
            [labels["a"], labels["d"]],
            [labels["m"], labels["n"], labels["o"], labels["i"]],
        )
        expected = {
            (s, t)
            for s in ("a", "d")
            for t in ("m", "n", "o", "i")
        }
        assert as_labels(graph, pairs) == expected

    def test_boundary_vertices_as_sources(self, engine, paper_example):
        graph, _, _ = paper_example
        eng, labels = engine
        pairs = eng.query([labels["i"], labels["o"]], [labels["k"], labels["q"]])
        assert as_labels(graph, pairs) == {("i", "k"), ("i", "q"), ("o", "k"), ("o", "q")}

    def test_empty_result(self, engine, paper_example):
        graph, _, _ = paper_example
        eng, labels = engine
        pairs = eng.query([labels["k"], labels["v"]], [labels["a"]])
        assert pairs == set()

    def test_unknown_vertex_rejected(self, engine):
        eng, labels = engine
        with pytest.raises(ValueError):
            eng.query([10_000], [labels["a"]])


class TestCommunicationGuarantee:
    """The core claim: one communication round resolves any DSR query."""

    def test_single_round(self, engine, paper_example):
        graph, _, _ = paper_example
        eng, labels = engine
        result = eng.query_with_stats(
            [labels[x] for x in ("a", "d", "g")], [labels[x] for x in ("l", "p")]
        )
        assert result.rounds == 1

    def test_local_query_needs_no_messages(self, engine, paper_example):
        graph, _, _ = paper_example
        eng, labels = engine
        result = eng.query_with_stats([labels["d"]], [labels["b"]])
        assert result.rounds == 1
        assert result.messages_sent == 0
        assert (labels["d"], labels["b"]) in result.pairs
