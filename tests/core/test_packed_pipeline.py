"""Bits/sets parity of the full query pipeline.

The packed-row pipeline must answer every query identically to the set
pipeline — across every executor backend (the matrix honours
``REPRO_TEST_EXECUTORS``), in both processing directions, through every
registered backend, and on the handle-expansion edge cases (overlap
vertices are kept member-level; class handles expand to representatives).
"""

import os
import random

import pytest

from repro.api import DSRConfig, ReachQuery, available_backends, open_engine
from repro.graph import generators
from repro.graph.digraph import DiGraph

EXECUTORS = tuple(
    name.strip()
    for name in os.environ.get(
        "REPRO_TEST_EXECUTORS", "serial,threads,processes"
    ).split(",")
    if name.strip()
)


def _random_queries(graph, count, size, seed):
    rng = random.Random(seed)
    vertices = sorted(graph.vertices())
    queries = []
    for _ in range(count):
        queries.append(
            (
                tuple(rng.sample(vertices, min(size, len(vertices)))),
                tuple(rng.sample(vertices, min(size, len(vertices)))),
            )
        )
    return queries


@pytest.mark.parametrize("executor", EXECUTORS)
class TestBitsSetsParityAcrossExecutors:
    """representation="bits" == representation="sets" on every executor."""

    def test_forward_parity(self, executor):
        graph = generators.social_graph(220, avg_degree=5, seed=17)
        engine = open_engine(
            graph,
            DSRConfig(num_partitions=4, local_index="msbfs", executor=executor),
        )
        try:
            for sources, targets in _random_queries(graph, 6, 8, seed=23):
                bits = engine.run(
                    ReachQuery(sources, targets, representation="bits")
                )
                sets = engine.run(
                    ReachQuery(sources, targets, representation="sets")
                )
                assert bits.pairs == sets.pairs
                assert bits.rounds == sets.rounds == 1
        finally:
            engine.close()

    def test_backward_parity(self, executor):
        graph = generators.social_graph(180, avg_degree=4, seed=29)
        engine = open_engine(
            graph,
            DSRConfig(
                num_partitions=3,
                local_index="msbfs",
                executor=executor,
                enable_backward=True,
            ),
        )
        try:
            for sources, targets in _random_queries(graph, 4, 6, seed=31):
                results = {
                    (direction, representation): engine.run(
                        ReachQuery(
                            sources,
                            targets,
                            direction=direction,
                            representation=representation,
                        )
                    ).pairs
                    for direction in ("forward", "backward")
                    for representation in ("bits", "sets")
                }
                reference = results[("forward", "sets")]
                for key, pairs in results.items():
                    assert pairs == reference, f"{key} diverges"
        finally:
            engine.close()

    def test_parity_survives_updates(self, executor):
        graph = generators.social_graph(150, avg_degree=4, seed=37)
        engine = open_engine(
            graph,
            DSRConfig(num_partitions=3, local_index="msbfs", executor=executor),
        )
        try:
            query_args = _random_queries(graph, 3, 10, seed=41)
            edges = list(graph.edges())[:5]
            for u, v in edges:
                engine.delete_edge(u, v)
            for sources, targets in query_args:
                bits = engine.run(ReachQuery(sources, targets, representation="bits"))
                sets = engine.run(ReachQuery(sources, targets, representation="sets"))
                assert bits.pairs == sets.pairs
            for u, v in edges:
                engine.insert_edge(u, v)
            for sources, targets in query_args:
                bits = engine.run(ReachQuery(sources, targets, representation="bits"))
                sets = engine.run(ReachQuery(sources, targets, representation="sets"))
                assert bits.pairs == sets.pairs
        finally:
            engine.close()


class TestHandleExpansionEdgeCases:
    """Overlap vertices stay member-level through the packed wire."""

    def _overlap_graph(self):
        # Hash partitioning over 3 parts assigns v -> v % 3.  Partition 1
        # holds {1, 4, 7, 10, 13, 16}: vertex 4 is an in-boundary (0 -> 4),
        # vertex 7 an *overlap* vertex (in via 2 -> 7, out via 7 -> 5, so it
        # must stay member-level in the summary), and 13/16 are pure
        # interior targets reachable only through the handle exchange.
        # Partition 2 mirrors the shape with interior targets 11/14.
        return DiGraph.from_edges(
            [
                (0, 4), (4, 13), (13, 16),          # into p1, interior chain
                (2, 7), (7, 5), (7, 13),            # overlap vertex 7
                (1, 4), (4, 10), (10, 16),          # intra-p1 fan
                (0, 3), (3, 6), (6, 4),             # intra-p0 path to the cut
                (5, 8), (8, 11), (11, 14),          # interior chain in p2
                (9, 0),                             # back-edge into p0
            ]
        )

    def test_overlap_and_interior_targets(self):
        graph = self._overlap_graph()
        engine = open_engine(
            graph, DSRConfig(num_partitions=3, partitioner="hash", local_index="msbfs")
        )
        vertices = tuple(sorted(graph.vertices()))
        bits = engine.run(ReachQuery(vertices, vertices, representation="bits"))
        sets = engine.run(ReachQuery(vertices, vertices, representation="sets"))
        assert bits.pairs == sets.pairs
        # Sanity: the workload really exercised the handle exchange.
        assert bits.messages_sent == sets.messages_sent
        assert bits.messages_sent > 0

    def test_without_equivalence_member_level_wire(self):
        graph = self._overlap_graph()
        engine = open_engine(
            graph,
            DSRConfig(
                num_partitions=3,
                partitioner="hash",
                local_index="msbfs",
                use_equivalence=False,
            ),
        )
        vertices = tuple(sorted(graph.vertices()))
        bits = engine.run(ReachQuery(vertices, vertices, representation="bits"))
        sets = engine.run(ReachQuery(vertices, vertices, representation="sets"))
        assert bits.pairs == sets.pairs

    def test_packed_wire_ships_fewer_bytes(self):
        graph = generators.social_graph(200, avg_degree=5, seed=43)
        engine = open_engine(graph, DSRConfig(num_partitions=4, local_index="msbfs"))
        sources = tuple(sorted(graph.vertices()))[:40]
        targets = tuple(sorted(graph.vertices()))[-40:]
        bits = engine.run(ReachQuery(sources, targets, representation="bits"))
        sets = engine.run(ReachQuery(sources, targets, representation="sets"))
        assert bits.pairs == sets.pairs
        if sets.bytes_sent:
            assert bits.bytes_sent < sets.bytes_sent


class TestCrossBackendParity:
    """Every registered backend answers like the packed DSR pipeline."""

    def test_all_backends_agree_with_bits(self):
        graph = generators.random_digraph(90, 260, seed=47)
        partitions = 3
        queries = _random_queries(graph, 3, 6, seed=53)
        reference = None
        dsr = open_engine(
            graph, DSRConfig(num_partitions=partitions, local_index="msbfs")
        )
        reference = [
            dsr.run(ReachQuery(s, t, representation="bits")).pairs for s, t in queries
        ]
        for backend in available_backends():
            engine = open_engine(
                graph, DSRConfig(backend=backend, num_partitions=partitions)
            )
            for index, (sources, targets) in enumerate(queries):
                result = engine.run(ReachQuery(sources, targets))
                assert result.pairs == reference[index], (
                    f"backend {backend} diverges from packed DSR"
                )


class TestRepresentationPlumbing:
    def test_reach_query_validates_representation(self):
        from repro.api.query import QueryError

        with pytest.raises(QueryError):
            ReachQuery((1,), (2,), representation="packed")
        query = ReachQuery((1,), (2,), representation="bits")
        assert query.to_dict()["representation"] == "bits"
        assert ReachQuery.from_dict(query.to_dict()) == query

    def test_executor_rejects_unknown_representation(self):
        graph = generators.random_digraph(30, 60, seed=59)
        engine = open_engine(graph, DSRConfig(num_partitions=2))
        with pytest.raises(ValueError):
            engine._executor.query([0], [1], representation="nope")

    def test_planner_resolves_representation(self):
        from repro.service.planner import QueryPlanner

        graph = generators.social_graph(120, avg_degree=5, seed=61)
        engine = open_engine(graph, DSRConfig(num_partitions=3))
        planner = QueryPlanner(engine)
        vertices = tuple(sorted(graph.vertices()))
        auto_plan = planner.plan(ReachQuery(vertices[:20], vertices[:20]))
        assert auto_plan.representation == "bits"
        forced = planner.plan(
            ReachQuery(vertices[:20], vertices[:20], representation="sets")
        )
        assert forced.representation == "sets"

    def test_engine_auto_picks_sets_for_tiny_sparse(self):
        # A near-edgeless graph with a single-pair query lands on "sets".
        graph = DiGraph.from_edges([(0, 1)])
        for v in range(2, 40):
            graph.add_vertex(v)
        engine = open_engine(graph, DSRConfig(num_partitions=2, partitioner="hash"))
        assert (
            engine._resolve_representation(ReachQuery((0,), (1,))) == "sets"
        )
        assert (
            engine._resolve_representation(
                ReachQuery(tuple(range(10)), tuple(range(10, 20)))
            )
            == "bits"
        )


class TestInPlaceInsertKeepsMasksFresh:
    """The sanctioned in-place isolated-vertex insert rebuilds the condensed
    view without going through ``CompoundGraph.build_reachability``; the
    packed handle caches must follow the new vertex-rank numbering."""

    def test_bits_query_after_insert_vertex(self):
        # Spaced ids so an inserted vertex (15) shifts every later rank.
        edges = [(u, u + 10) for u in range(10, 600, 10)]
        edges += [(600, 10), (50, 250), (250, 450)]
        graph = DiGraph.from_edges(edges)
        engine = open_engine(
            graph, DSRConfig(num_partitions=3, partitioner="hash", local_index="msbfs")
        )
        vertices = tuple(sorted(graph.vertices()))
        query = ReachQuery(vertices[:20], vertices[-20:], representation="bits")
        before = engine.run(query).pairs
        assert before == engine.run(
            ReachQuery(vertices[:20], vertices[-20:], representation="sets")
        ).pairs
        # In-place insert of a non-maximal id: ranks >= rank(15) all shift.
        engine.insert_vertex(vertex=15)
        after_bits = engine.run(query).pairs
        after_sets = engine.run(
            ReachQuery(vertices[:20], vertices[-20:], representation="sets")
        ).pairs
        assert after_bits == after_sets == before


class TestRankShiftGuards:
    """Mid-epoch rank shifts must be detected, not silently mis-decoded."""

    def test_worker_rejects_mismatched_rank_cardinality(self):
        from repro.cluster.executors import StaleEpochError
        from repro.core.shard_exec import build_shard_blob, load_shard, local_step
        from repro.reachability.packed import row_to_bytes

        graph = generators.social_graph(60, avg_degree=4, seed=97)
        engine = open_engine(graph, DSRConfig(num_partitions=2, local_index="msbfs"))
        state = engine.index.current_state()
        shard = load_shard(
            build_shard_blob(0, 0, state.compound_graphs[0], state.summaries[0])
        )
        vrank = state.vertex_rank(0)
        payload = {
            "sources": sorted(state.compound_graphs[0].local_vertices)[:3],
            "interior_pids": [],
            "targets_bits": row_to_bytes(vrank.full_mask()),
            "num_ranks": len(vrank) + 1,  # as if packed after an insert
        }
        with pytest.raises(StaleEpochError):
            local_step(shard, payload)
        payload["num_ranks"] = len(vrank)
        groups, outgoing = local_step(shard, payload)
        assert outgoing == {}
        assert groups  # sources reach at least themselves

    def test_pinned_view_survives_in_place_rebuild(self):
        # Masks packed from a captured view must evaluate against that same
        # view even if the condensation is rebuilt in between (the
        # sanctioned in-place insert path).
        graph = generators.social_graph(80, avg_degree=4, seed=101)
        engine = open_engine(graph, DSRConfig(num_partitions=2, local_index="msbfs"))
        compound = engine.index.current_state().compound_graphs[0]
        view = compound.condensation_view()
        vrank = view.vertex_rank
        sources = sorted(compound.local_vertices)[:5]
        mask = vrank.full_mask()
        before = compound.local_set_reachability_rows(sources, mask, view)
        compound.graph.add_vertex(max(graph.vertices()) + 1)
        compound.reachability.rebuild()  # installs a new, shifted rank
        assert compound.vertex_rank is not vrank
        after = compound.local_set_reachability_rows(sources, mask, view)
        assert after == before
