"""Tests for forward/backward equivalence sets (Definition 5, Algorithm 3)."""

import pytest

from repro.core.equivalence import (
    BACKWARD,
    FORWARD,
    ClassIdAllocator,
    EquivalenceClass,
    compute_backward_classes,
    compute_forward_classes,
    compute_equivalence_sets,
    singleton_classes,
)
from repro.graph import generators
from repro.graph.traversal import bfs_reachable_set


def class_member_sets(classes):
    return {frozenset(cls.members) for cls in classes}


class TestEquivalenceClassDataclass:
    def test_representative_must_be_member(self):
        with pytest.raises(ValueError):
            EquivalenceClass(1, 0, FORWARD, frozenset({2, 3}), representative=9)

    def test_invalid_kind(self):
        with pytest.raises(ValueError):
            EquivalenceClass(1, 0, "sideways", frozenset({2}), representative=2)

    def test_len_and_message_size(self):
        cls = EquivalenceClass(1, 0, FORWARD, frozenset({2, 3}), representative=2)
        assert len(cls) == 2
        assert cls.message_size() > 0


class TestAllocator:
    def test_monotonically_increasing(self):
        allocator = ClassIdAllocator(100)
        assert allocator.allocate() == 100
        assert allocator.allocate() == 101
        assert allocator.next_id == 102


class TestPaperExampleClasses:
    """Example 5 of the paper pins the equivalence sets of Figure 1."""

    def test_partition2_forward_classes(self, paper_example):
        graph, partitioning, labels = paper_example
        local = partitioning.local_subgraph(1)
        classes = compute_forward_classes(
            local,
            partitioning.in_boundaries(1),
            partitioning.out_boundaries(1),
            partition_id=1,
            allocator=ClassIdAllocator(1000),
        )
        member_labels = {
            frozenset(graph.label_of(member) for member in cls.members)
            for cls in classes
        }
        assert member_labels == {frozenset({"c", "h"}), frozenset({"g"})}

    def test_partition3_forward_classes(self, paper_example):
        graph, partitioning, labels = paper_example
        local = partitioning.local_subgraph(2)
        classes = compute_forward_classes(
            local,
            partitioning.in_boundaries(2),
            partitioning.out_boundaries(2),
            partition_id=2,
            allocator=ClassIdAllocator(1000),
        )
        member_labels = {
            frozenset(graph.label_of(member) for member in cls.members)
            for cls in classes
        }
        assert member_labels == {frozenset({"m", "n"})}

    def test_partition1_backward_classes(self, paper_example):
        graph, partitioning, labels = paper_example
        local = partitioning.local_subgraph(0)
        classes = compute_backward_classes(
            local,
            partitioning.in_boundaries(0),
            partitioning.out_boundaries(0),
            partition_id=0,
            allocator=ClassIdAllocator(1000),
        )
        member_labels = {
            frozenset(graph.label_of(member) for member in cls.members)
            for cls in classes
        }
        assert member_labels == {frozenset({"b", "e"})}


class TestEquivalenceSemantics:
    """Members of a class must be indistinguishable per Definition 5."""

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_forward_members_reach_same_non_boundary_vertices(self, seed):
        graph = generators.random_digraph(60, 170, seed=seed)
        from repro.partition.partition import make_partitioning

        partitioning = make_partitioning(graph, 3, strategy="hash", seed=seed)
        for pid in range(3):
            local = partitioning.local_subgraph(pid)
            in_b = partitioning.in_boundaries(pid)
            out_b = partitioning.out_boundaries(pid)
            classes = compute_forward_classes(
                local, in_b, out_b, pid, ClassIdAllocator(10_000)
            )
            for cls in classes:
                reach_sets = {
                    member: bfs_reachable_set(local, member) - in_b
                    for member in cls.members
                }
                reference = next(iter(reach_sets.values()))
                for reached in reach_sets.values():
                    assert reached == reference

    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_backward_members_reached_by_same_vertices(self, seed):
        graph = generators.random_digraph(60, 170, seed=10 + seed)
        from repro.partition.partition import make_partitioning

        partitioning = make_partitioning(graph, 3, strategy="hash", seed=seed)
        for pid in range(3):
            local = partitioning.local_subgraph(pid)
            reverse = local.reverse()
            in_b = partitioning.in_boundaries(pid)
            out_b = partitioning.out_boundaries(pid)
            classes = compute_backward_classes(
                local, in_b, out_b, pid, ClassIdAllocator(10_000)
            )
            for cls in classes:
                reach_sets = {
                    member: bfs_reachable_set(reverse, member) - out_b
                    for member in cls.members
                }
                reference = next(iter(reach_sets.values()))
                for reached in reach_sets.values():
                    assert reached == reference

    def test_classes_partition_the_candidates(self):
        graph = generators.web_graph(150, avg_degree=5, seed=4)
        from repro.partition.partition import make_partitioning

        partitioning = make_partitioning(graph, 4, strategy="hash", seed=1)
        for pid in range(4):
            in_b = partitioning.in_boundaries(pid)
            out_b = partitioning.out_boundaries(pid)
            classes = compute_forward_classes(
                partitioning.local_subgraph(pid), in_b, out_b, pid, ClassIdAllocator(9999)
            )
            covered = [member for cls in classes for member in cls.members]
            assert sorted(covered) == sorted(in_b - out_b)

    def test_overlap_vertices_never_classified(self):
        graph = generators.random_digraph(50, 200, seed=5)
        from repro.partition.partition import make_partitioning

        partitioning = make_partitioning(graph, 3, strategy="hash", seed=2)
        for pid in range(3):
            in_b = partitioning.in_boundaries(pid)
            out_b = partitioning.out_boundaries(pid)
            overlap = in_b & out_b
            forward, backward = compute_equivalence_sets(
                partitioning.local_subgraph(pid), in_b, out_b, pid, ClassIdAllocator(9999)
            )
            for cls in forward + backward:
                assert not (set(cls.members) & overlap)


class TestSingletonClasses:
    def test_one_class_per_member(self):
        classes = singleton_classes([5, 3, 3], 0, BACKWARD, ClassIdAllocator(50))
        assert len(classes) == 2
        assert class_member_sets(classes) == {frozenset({3}), frozenset({5})}

    def test_empty_input(self):
        assert singleton_classes([], 0, FORWARD, ClassIdAllocator(0)) == []
