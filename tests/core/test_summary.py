"""Tests for per-partition summaries and boundary graphs (Definitions 4/5)."""


from repro.core.boundary_graph import boundary_graph_stats, build_boundary_graph
from repro.core.equivalence import ClassIdAllocator
from repro.core.summary import build_partition_summary
from repro.graph import generators
from repro.graph.traversal import is_reachable
from repro.partition.partition import make_partitioning


def make_summary(partitioning, pid, use_equivalence, allocator=None):
    return build_partition_summary(
        partition_id=pid,
        local_graph=partitioning.local_subgraph(pid),
        in_boundaries=partitioning.in_boundaries(pid),
        out_boundaries=partitioning.out_boundaries(pid),
        allocator=allocator or ClassIdAllocator(100_000),
        use_equivalence=use_equivalence,
    )


class TestSummaryWithoutEquivalence:
    def test_member_edges_are_exact_reachability(self):
        graph = generators.random_digraph(60, 180, seed=1)
        partitioning = make_partitioning(graph, 3, strategy="hash", seed=1)
        for pid in range(3):
            local = partitioning.local_subgraph(pid)
            summary = make_summary(partitioning, pid, use_equivalence=False)
            in_b = partitioning.in_boundaries(pid)
            out_b = partitioning.out_boundaries(pid)
            expected = {
                (b, o)
                for b in in_b
                for o in out_b
                if b != o and is_reachable(local, b, o)
            }
            assert summary.member_edges == expected
            assert summary.class_edges == set()
            assert summary.forward_classes == []

    def test_handles_are_raw_boundaries(self):
        graph = generators.random_digraph(50, 150, seed=2)
        partitioning = make_partitioning(graph, 3, strategy="hash", seed=2)
        summary = make_summary(partitioning, 0, use_equivalence=False)
        assert summary.forward_handles() == set(partitioning.in_boundaries(0))
        assert summary.backward_handles() == set(partitioning.out_boundaries(0))


class TestSummaryWithEquivalence:
    def test_paper_example_partition2(self, paper_example):
        graph, partitioning, labels = paper_example
        summary = make_summary(partitioning, 1, use_equivalence=True)
        # Forward classes {c, h} and {g}; backward class {i}.
        forward_members = {
            frozenset(graph.label_of(m) for m in cls.members)
            for cls in summary.forward_classes
        }
        backward_members = {
            frozenset(graph.label_of(m) for m in cls.members)
            for cls in summary.backward_classes
        }
        assert forward_members == {frozenset({"c", "h"}), frozenset({"g"})}
        assert backward_members == {frozenset({"i"})}
        # All of c, g, h reach i, so both forward classes connect to the
        # backward class of i.
        assert len(summary.class_edges) == 2

    def test_expand_handle(self, paper_example):
        graph, partitioning, labels = paper_example
        summary = make_summary(partitioning, 1, use_equivalence=True)
        for cls in summary.forward_classes:
            assert summary.expand_handle(cls.class_id) == (cls.representative,)
        # Unknown handles expand to themselves (overlap/member handles).
        assert summary.expand_handle(labels["i"]) == (labels["i"],)

    def test_class_compression_reduces_transitive_edges(self):
        graph = generators.web_graph(250, avg_degree=7, seed=3)
        partitioning = make_partitioning(graph, 4, strategy="hash", seed=3)
        allocator = ClassIdAllocator(1_000_000)
        for pid in range(4):
            plain = make_summary(partitioning, pid, use_equivalence=False)
            optimised = make_summary(partitioning, pid, True, allocator)
            # Class + member + connector edges never exceed the fully
            # materialised member-level pairs by more than the in/in additions.
            in_b = partitioning.in_boundaries(pid)
            assert len(optimised.class_edges) <= len(plain.member_edges) + 1
            assert optimised.forward_handles() != set() or not in_b

    def test_handles_include_overlap(self):
        graph = generators.random_digraph(40, 220, seed=5)
        partitioning = make_partitioning(graph, 3, strategy="hash", seed=5)
        for pid in range(3):
            summary = make_summary(partitioning, pid, use_equivalence=True)
            overlap = summary.overlap
            assert overlap <= summary.forward_handles()
            assert overlap <= summary.backward_handles()

    def test_empty_partition_summary(self):
        graph = generators.path_graph(4)
        partitioning = make_partitioning(graph, 1, strategy="hash")
        summary = make_summary(partitioning, 0, use_equivalence=True)
        assert summary.forward_handles() == set()
        assert summary.num_transitive_edges() == 0

    def test_message_size_positive(self, paper_example):
        _, partitioning, _ = paper_example
        summary = make_summary(partitioning, 2, use_equivalence=True)
        assert summary.message_size() > 0


class TestBoundaryGraph:
    def test_definition4_membership(self, paper_example):
        graph, partitioning, labels = paper_example
        summaries = {
            pid: make_summary(partitioning, pid, use_equivalence=False)
            for pid in range(3)
        }
        boundary = build_boundary_graph(0, summaries, partitioning.cut_edges())
        # Every cut edge is present.
        for u, v in partitioning.cut_edges():
            assert boundary.has_edge(u, v)
        # Transitive edges of *other* partitions are present (c ⇝ i in G2).
        assert boundary.has_edge(labels["c"], labels["i"])
        assert boundary.has_edge(labels["m"], labels["o"])
        # Partition 0's own transitive information is excluded.
        assert not boundary.has_edge(labels["d"], labels["b"])

    def test_equivalence_shrinks_entries(self):
        graph = generators.web_graph(300, avg_degree=7, seed=6)
        partitioning = make_partitioning(graph, 4, strategy="hash", seed=6)
        allocator = ClassIdAllocator(1_000_000)
        plain = {
            pid: make_summary(partitioning, pid, use_equivalence=False)
            for pid in range(4)
        }
        optimised = {
            pid: make_summary(partitioning, pid, True, allocator) for pid in range(4)
        }
        plain_stats = boundary_graph_stats(0, plain, partitioning.cut_edges())
        opt_stats = boundary_graph_stats(0, optimised, partitioning.cut_edges())
        assert opt_stats.num_forward_entries <= plain_stats.num_forward_entries
        assert opt_stats.num_backward_entries <= plain_stats.num_backward_entries


class TestSummaryMemoisation:
    """Derived maps are built once per summary (they used to rebuild per call)."""

    def test_member_to_class_maps_are_memoised(self):
        graph = generators.random_digraph(60, 180, seed=5)
        partitioning = make_partitioning(graph, 3, strategy="hash", seed=5)
        summary = make_summary(partitioning, 0, use_equivalence=True)
        forward = summary.member_to_forward_class()
        backward = summary.member_to_backward_class()
        assert summary.member_to_forward_class() is forward
        assert summary.member_to_backward_class() is backward
        # Content still matches a fresh rebuild from the classes.
        assert forward == {
            member: cls.class_id
            for cls in summary.forward_classes
            for member in cls.members
        }
        assert backward == {
            member: cls.class_id
            for cls in summary.backward_classes
            for member in cls.members
        }

    def test_expand_handle_memoised_table_matches_scan(self):
        graph = generators.random_digraph(60, 180, seed=6)
        partitioning = make_partitioning(graph, 3, strategy="hash", seed=6)
        summary = make_summary(partitioning, 1, use_equivalence=True)
        for cls in list(summary.forward_classes) + list(summary.backward_classes):
            assert summary.expand_handle(cls.class_id) == (cls.representative,)
        # Member handles (e.g. overlap vertices) expand to themselves.
        for member in summary.overlap:
            assert summary.expand_handle(member) == (member,)
        assert summary.expand_handle(123456789) == (123456789,)

    def test_forward_handle_order_is_sorted_and_stable(self):
        graph = generators.random_digraph(50, 150, seed=7)
        partitioning = make_partitioning(graph, 3, strategy="hash", seed=7)
        summary = make_summary(partitioning, 2, use_equivalence=True)
        order = summary.forward_handle_order()
        assert order == tuple(sorted(summary.forward_handles()))
        assert summary.forward_handle_order() is order
