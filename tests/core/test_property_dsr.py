"""Property-based tests: the DSR protocol always matches ground truth.

These are the strongest correctness tests in the suite: hypothesis generates
arbitrary small graphs, partitionings and queries, and the full distributed
pipeline (summaries → compound graphs → one-round query) must return exactly
the reachable pairs of a plain traversal on the unpartitioned graph.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.engine import DSREngine
from repro.graph.digraph import DiGraph
from repro.graph.traversal import reachable_pairs
from repro.partition.partition import GraphPartitioning

NUM_VERTICES = 12

graph_strategy = st.lists(
    st.tuples(st.integers(0, NUM_VERTICES - 1), st.integers(0, NUM_VERTICES - 1)),
    min_size=0,
    max_size=50,
)
assignment_strategy = st.lists(
    st.integers(0, 2), min_size=NUM_VERTICES, max_size=NUM_VERTICES
)
query_strategy = st.tuples(
    st.sets(st.integers(0, NUM_VERTICES - 1), min_size=1, max_size=4),
    st.sets(st.integers(0, NUM_VERTICES - 1), min_size=1, max_size=4),
)


def build_engine(edges, assignment_list, use_equivalence):
    graph = DiGraph.from_edges(edges, vertices=range(NUM_VERTICES))
    assignment = {vertex: assignment_list[vertex] for vertex in range(NUM_VERTICES)}
    partitioning = GraphPartitioning(graph, assignment, 3)
    engine = DSREngine(
        graph,
        partitioning=partitioning,
        local_index="dfs",
        use_equivalence=use_equivalence,
    )
    engine.build_index()
    return graph, engine


@given(edges=graph_strategy, assignment=assignment_strategy, query=query_strategy)
@settings(max_examples=60, deadline=None)
def test_dsr_with_equivalence_matches_ground_truth(edges, assignment, query):
    graph, engine = build_engine(edges, assignment, use_equivalence=True)
    sources, targets = query
    assert engine.query(sources, targets) == reachable_pairs(graph, sources, targets)


@given(edges=graph_strategy, assignment=assignment_strategy, query=query_strategy)
@settings(max_examples=60, deadline=None)
def test_dsr_without_equivalence_matches_ground_truth(edges, assignment, query):
    graph, engine = build_engine(edges, assignment, use_equivalence=False)
    sources, targets = query
    assert engine.query(sources, targets) == reachable_pairs(graph, sources, targets)


@given(edges=graph_strategy, assignment=assignment_strategy, query=query_strategy)
@settings(max_examples=30, deadline=None)
def test_single_round_guarantee(edges, assignment, query):
    _, engine = build_engine(edges, assignment, use_equivalence=True)
    sources, targets = query
    result = engine.query_with_stats(sources, targets)
    assert result.rounds == 1


@given(edges=graph_strategy, assignment=assignment_strategy, query=query_strategy)
@settings(max_examples=30, deadline=None)
def test_equivalence_setting_never_changes_answers(edges, assignment, query):
    graph, with_eq = build_engine(edges, assignment, use_equivalence=True)
    _, without_eq = build_engine(edges, assignment, use_equivalence=False)
    sources, targets = query
    assert with_eq.query(sources, targets) == without_eq.query(sources, targets)


@given(
    edges=graph_strategy,
    assignment=assignment_strategy,
    update=st.tuples(st.integers(0, NUM_VERTICES - 1), st.integers(0, NUM_VERTICES - 1)),
    query=query_strategy,
)
@settings(max_examples=40, deadline=None)
def test_incremental_insertion_matches_rebuilt_index(edges, assignment, update, query):
    graph, engine = build_engine(edges, assignment, use_equivalence=True)
    u, v = update
    if u != v:
        engine.insert_edge(u, v)
        graph_after = DiGraph.from_edges(
            list(set(edges) | {(u, v)}), vertices=range(NUM_VERTICES)
        )
    else:
        graph_after = graph
    sources, targets = query
    assert engine.query(sources, targets) == reachable_pairs(
        graph_after, sources, targets
    )
