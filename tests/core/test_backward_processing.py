"""Tests for backward query processing (Section 3.3.2, forward vs backward)."""

import random

import pytest

from repro.core.engine import DSREngine
from repro.graph import generators
from repro.graph.traversal import reachable_pairs


@pytest.fixture
def backward_engine():
    graph = generators.web_graph(130, avg_degree=5, seed=19)
    engine = DSREngine(
        graph, num_partitions=4, local_index="msbfs", seed=3, enable_backward=True
    )
    engine.build_index()
    return graph, engine


class TestBackwardQueries:
    def test_backward_matches_forward(self, backward_engine):
        graph, engine = backward_engine
        rng = random.Random(1)
        vertices = sorted(graph.vertices())
        sources = rng.sample(vertices, 10)
        targets = rng.sample(vertices, 10)
        forward = engine.query(sources, targets, direction="forward")
        backward = engine.query(sources, targets, direction="backward")
        assert forward == backward == reachable_pairs(graph, sources, targets)

    def test_backward_matches_ground_truth_paper_example(self, paper_example):
        graph, partitioning, labels = paper_example
        engine = DSREngine(
            graph, partitioning=partitioning, local_index="dfs", enable_backward=True
        )
        engine.build_index()
        sources = [labels[x] for x in ("a", "d", "g")]
        targets = [labels[x] for x in ("l", "p")]
        pairs = engine.query(sources, targets, direction="backward")
        assert {(graph.label_of(s), graph.label_of(t)) for s, t in pairs} == {
            (s, t) for s in ("a", "d", "g") for t in ("l", "p")
        }

    def test_auto_prefers_backward_for_few_targets(self, backward_engine):
        graph, engine = backward_engine
        rng = random.Random(2)
        vertices = sorted(graph.vertices())
        sources = rng.sample(vertices, 12)
        targets = rng.sample(vertices, 3)
        auto = engine.query(sources, targets, direction="auto")
        assert auto == reachable_pairs(graph, sources, targets)

    def test_auto_without_backward_index_falls_back(self):
        graph = generators.random_digraph(50, 140, seed=21)
        engine = DSREngine(graph, num_partitions=3, seed=1)  # enable_backward=False
        engine.build_index()
        vertices = sorted(graph.vertices())
        pairs = engine.query(vertices[:8], vertices[8:10], direction="auto")
        assert pairs == reachable_pairs(graph, vertices[:8], vertices[8:10])

    def test_explicit_backward_without_index_raises(self):
        graph = generators.random_digraph(30, 80, seed=22)
        engine = DSREngine(graph, num_partitions=2, seed=1)
        engine.build_index()
        with pytest.raises(RuntimeError):
            engine.query([0], [1], direction="backward")

    def test_invalid_direction_rejected(self, backward_engine):
        _, engine = backward_engine
        with pytest.raises(ValueError):
            engine.query([0], [1], direction="sideways")

    def test_single_round_in_backward_mode(self, backward_engine):
        graph, engine = backward_engine
        vertices = sorted(graph.vertices())
        result = engine.query_with_stats(vertices[:6], vertices[6:8], direction="backward")
        assert result.rounds == 1


class TestBackwardWithUpdates:
    def test_updates_keep_both_indexes_consistent(self, backward_engine):
        graph, engine = backward_engine
        rng = random.Random(5)
        vertices = sorted(graph.vertices())
        u, v = rng.sample(vertices, 2)
        engine.insert_edge(u, v)
        removal = next(iter(graph.edges()))
        engine.delete_edge(*removal)

        sources = rng.sample(vertices, 8)
        targets = rng.sample(vertices, 4)
        expected = reachable_pairs(graph, sources, targets)
        assert engine.query(sources, targets, direction="forward") == expected
        assert engine.query(sources, targets, direction="backward") == expected

    def test_vertex_updates_mirrored(self, backward_engine):
        graph, engine = backward_engine
        new_vertex = engine.insert_vertex()
        anchor = sorted(graph.vertices())[0]
        engine.insert_edge(anchor, new_vertex)
        expected = reachable_pairs(graph, [anchor], [new_vertex])
        assert engine.query([anchor], [new_vertex], direction="forward") == expected
        assert engine.query([anchor], [new_vertex], direction="backward") == expected
