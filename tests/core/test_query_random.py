"""DSR query evaluation vs ground truth on randomly generated settings."""

import random

import pytest

from repro.core.engine import DSREngine
from repro.graph import generators
from repro.graph.traversal import reachable_pairs


def ground_truth(graph, sources, targets):
    return reachable_pairs(graph, sources, targets)


GENERATORS = {
    "random": lambda seed: generators.random_digraph(70, 200, seed=seed),
    "social": lambda seed: generators.social_graph(90, avg_degree=5, seed=seed),
    "web": lambda seed: generators.web_graph(90, avg_degree=5, seed=seed),
    "hierarchy": lambda seed: generators.hierarchy_graph(100, seed=seed),
    "dag": lambda seed: generators.dag(80, 200, seed=seed),
}


@pytest.mark.parametrize("graph_kind", sorted(GENERATORS))
@pytest.mark.parametrize("use_equivalence", [True, False], ids=["eq", "noeq"])
def test_dsr_matches_ground_truth(graph_kind, use_equivalence):
    graph = GENERATORS[graph_kind](seed=17)
    engine = DSREngine(
        graph,
        num_partitions=4,
        partitioner="hash",
        local_index="msbfs",
        use_equivalence=use_equivalence,
        seed=3,
    )
    engine.build_index()
    rng = random.Random(5)
    vertices = sorted(graph.vertices())
    for _ in range(3):
        sources = rng.sample(vertices, 8)
        targets = rng.sample(vertices, 8)
        assert engine.query(sources, targets) == ground_truth(graph, sources, targets)


@pytest.mark.parametrize("num_partitions", [1, 2, 3, 5, 8])
def test_partition_count_does_not_change_answers(num_partitions):
    graph = generators.web_graph(120, avg_degree=6, seed=23)
    engine = DSREngine(
        graph,
        num_partitions=num_partitions,
        partitioner="metis",
        local_index="msbfs",
        seed=1,
    )
    engine.build_index()
    rng = random.Random(9)
    vertices = sorted(graph.vertices())
    sources = rng.sample(vertices, 10)
    targets = rng.sample(vertices, 10)
    assert engine.query(sources, targets) == ground_truth(graph, sources, targets)


@pytest.mark.parametrize("local_index", ["dfs", "msbfs", "ferrari", "grail", "closure"])
def test_local_strategy_does_not_change_answers(local_index):
    graph = generators.social_graph(100, avg_degree=6, reciprocity=0.4, seed=31)
    engine = DSREngine(
        graph, num_partitions=4, local_index=local_index, seed=2
    )
    engine.build_index()
    rng = random.Random(13)
    vertices = sorted(graph.vertices())
    sources = rng.sample(vertices, 8)
    targets = rng.sample(vertices, 8)
    assert engine.query(sources, targets) == ground_truth(graph, sources, targets)


@pytest.mark.parametrize("partitioner", ["hash", "metis"])
def test_partitioner_does_not_change_answers(partitioner):
    graph = generators.copurchase_graph(110, avg_degree=5, seed=41)
    engine = DSREngine(
        graph, num_partitions=4, partitioner=partitioner, local_index="msbfs", seed=4
    )
    engine.build_index()
    rng = random.Random(7)
    vertices = sorted(graph.vertices())
    sources = rng.sample(vertices, 9)
    targets = rng.sample(vertices, 9)
    assert engine.query(sources, targets) == ground_truth(graph, sources, targets)


def test_sources_equal_targets():
    graph = generators.random_digraph(60, 160, seed=51)
    engine = DSREngine(graph, num_partitions=3, local_index="msbfs", seed=5)
    engine.build_index()
    vertices = sorted(graph.vertices())[:10]
    assert engine.query(vertices, vertices) == ground_truth(graph, vertices, vertices)


def test_all_vertices_query_small_graph():
    graph = generators.random_digraph(25, 70, seed=61)
    engine = DSREngine(graph, num_partitions=3, partitioner="hash", seed=6)
    engine.build_index()
    vertices = sorted(graph.vertices())
    assert engine.query(vertices, vertices) == ground_truth(graph, vertices, vertices)


def test_disconnected_graph():
    graph = generators.random_digraph(80, 40, seed=71)  # sparse, disconnected
    engine = DSREngine(graph, num_partitions=4, partitioner="hash", seed=7)
    engine.build_index()
    rng = random.Random(3)
    vertices = sorted(graph.vertices())
    sources = rng.sample(vertices, 10)
    targets = rng.sample(vertices, 10)
    assert engine.query(sources, targets) == ground_truth(graph, sources, targets)


def test_single_vertex_graph():
    from repro.graph.digraph import DiGraph

    graph = DiGraph()
    graph.add_vertex(0)
    engine = DSREngine(graph, num_partitions=1, seed=1)
    engine.build_index()
    assert engine.query([0], [0]) == {(0, 0)}
