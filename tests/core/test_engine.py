"""Tests for the public DSREngine API."""

import pytest

from repro.core.engine import DSREngine
from repro.graph import generators


@pytest.fixture
def small_engine():
    graph = generators.social_graph(120, avg_degree=6, seed=2)
    engine = DSREngine(graph, num_partitions=4, local_index="msbfs", seed=1)
    engine.build_index()
    return graph, engine


class TestLifecycle:
    def test_query_before_build_raises(self):
        graph = generators.random_digraph(20, 40, seed=1)
        engine = DSREngine(graph, num_partitions=2)
        with pytest.raises(RuntimeError):
            engine.query([0], [1])

    def test_is_built_flag(self):
        graph = generators.random_digraph(20, 40, seed=1)
        engine = DSREngine(graph, num_partitions=2)
        assert not engine.is_built
        engine.build_index()
        assert engine.is_built

    def test_build_report_returned(self, small_engine):
        _, engine = small_engine
        assert engine.last_build_report is not None
        assert engine.last_build_report.total_bytes > 0

    def test_invalid_partitioner_rejected(self):
        graph = generators.random_digraph(20, 40, seed=1)
        with pytest.raises(ValueError):
            DSREngine(graph, num_partitions=2, partitioner="nope")

    def test_invalid_local_index_rejected(self):
        graph = generators.random_digraph(20, 40, seed=1)
        engine = DSREngine(graph, num_partitions=2, local_index="nope")
        with pytest.raises(ValueError):
            engine.build_index()


class TestQueryAPI:
    def test_query_returns_pairs(self, small_engine):
        graph, engine = small_engine
        vertices = sorted(graph.vertices())
        pairs = engine.query(vertices[:5], vertices[5:10])
        assert isinstance(pairs, set)
        for s, t in pairs:
            assert s in vertices[:5]
            assert t in vertices[5:10]

    def test_query_with_stats(self, small_engine):
        graph, engine = small_engine
        vertices = sorted(graph.vertices())
        result = engine.query_with_stats(vertices[:5], vertices[5:10])
        assert result.rounds == 1
        assert result.parallel_seconds >= 0
        assert engine.last_query_stats["num_pairs"] == result.num_pairs

    def test_last_query_stats_empty_before_first_query(self):
        graph = generators.random_digraph(20, 40, seed=1)
        engine = DSREngine(graph, num_partitions=2)
        assert engine.last_query_stats == {}

    def test_accepts_any_iterable(self, small_engine):
        graph, engine = small_engine
        vertices = sorted(graph.vertices())
        from_set = engine.query(set(vertices[:3]), set(vertices[3:6]))
        from_tuple = engine.query(tuple(vertices[:3]), tuple(vertices[3:6]))
        assert from_set == from_tuple


class TestIntrospection:
    def test_index_sizes(self, small_engine):
        _, engine = small_engine
        sizes = engine.index_sizes()
        assert sizes["max_original_edges"] >= sizes["max_dag_edges"] > 0
        assert sizes["total_bytes"] > 0

    def test_partition_summary_includes_boundary_entries(self, small_engine):
        _, engine = small_engine
        summary = engine.partition_summary()
        assert summary["num_partitions"] == 4
        assert "forward_entries" in summary
        assert "backward_entries" in summary

    def test_partition_summary_before_build(self):
        graph = generators.random_digraph(20, 40, seed=1)
        engine = DSREngine(graph, num_partitions=2)
        summary = engine.partition_summary()
        assert "forward_entries" not in summary


class TestParallelMode:
    def test_thread_pool_execution_gives_same_answers(self):
        graph = generators.web_graph(100, avg_degree=5, seed=3)
        serial = DSREngine(graph, num_partitions=3, seed=2, parallel=False)
        threaded = DSREngine(graph, num_partitions=3, seed=2, parallel=True)
        serial.build_index()
        threaded.build_index()
        vertices = sorted(graph.vertices())
        query = (vertices[:6], vertices[6:12])
        assert serial.query(*query) == threaded.query(*query)
