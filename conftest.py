"""Pytest bootstrap.

Makes the in-tree ``src/`` layout importable even when the package has not
been installed (useful in fully offline environments where ``pip install -e .``
cannot build an editable wheel).  When the package *is* installed this is a
harmless no-op because the installed location takes precedence only if it
appears earlier on ``sys.path``; either way the same source tree is used.
"""

import sys
from pathlib import Path

_SRC = Path(__file__).resolve().parent / "src"
if str(_SRC) not in sys.path:
    sys.path.insert(0, str(_SRC))
